package journal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"clockwork"
)

// Options configures a journal.
type Options struct {
	// Fsync selects machine-crash durability (see FsyncPolicy).
	Fsync FsyncPolicy
	// FsyncEvery is the background fsync cadence under FsyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
	// MaxSegmentBytes rotates the write-ahead log when a segment
	// exceeds this size (default 64MB).
	MaxSegmentBytes int64
	// SnapshotEvery, if > 0, has the serve layer take a snapshot on
	// this wall-clock cadence (the journal itself does not tick —
	// snapshots must enter through the engine like every injection).
	SnapshotEvery time.Duration
	// Retain selects on-disk history (default RetainAll; see
	// Retention — pruning forfeits deterministic replay of the epoch).
	Retain Retention

	// Speed and MaxInFlight mirror the serve options into the genesis
	// state so recovery can restart the daemon identically.
	Speed       float64
	MaxInFlight int

	// PriorRequests/PriorAcked seed cumulative accounting (recovery
	// passes the totals of previous epochs; fresh journals leave 0).
	PriorRequests uint64
	PriorAcked    uint64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FsyncEvery <= 0 {
		out.FsyncEvery = 100 * time.Millisecond
	}
	if out.MaxSegmentBytes <= 0 {
		out.MaxSegmentBytes = 64 << 20
	}
	return out
}

// Recorder appends the injection journal for one live epoch. The
// record methods are engine-confined: they must run inside the injected
// closure (or engine-side callback) performing the operation they
// record, because the (step, virtual time) stamp is read off the engine
// at the call. Status and Close are safe from any goroutine.
//
// Appends never block the serving path on storage: a write error
// latches the recorder into a failed state (Status().Failed) and
// further records are dropped. A deployment that must stop serving on
// journal failure should watch that flag.
type Recorder struct {
	w    *writer
	sys  *clockwork.System
	base State // static genesis fields (Config, Speed, MaxInFlight, Prior*)

	nextCorr uint64 // engine-confined
	// dirty flags buffered records pending a Flush. Engine-side
	// appenders set it; Flush — called from whichever goroutine
	// externalizes a response — clears it, hence atomic.
	dirty atomic.Bool

	snapCount    atomic.Uint64
	lastSnapUnix atomic.Int64
	lastSnapMu   sync.Mutex
	lastSnapPath string
	lastSnapSeq  uint64

	stopSync  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Create opens a new epoch in dir (epoch 0 for a fresh directory, one
// past the latest otherwise) and writes its genesis record: the full
// current control-plane state of sys. Call it after preloading models
// and before StartLive — or with recovery's rebuilt system, whose
// restored registry then becomes the new epoch's genesis. The system
// must be single-engine (journaling and replay are single-engine
// features, the same boundary RunFor enforces).
func Create(dir string, sys *clockwork.System, cfg clockwork.Config, opts Options) (*Recorder, error) {
	if cfg.EnginePerShard {
		return nil, fmt.Errorf("journal: EnginePerShard systems cannot be journaled (bit-exact replay is a single-engine property)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	epoch := 0
	if last, ok, err := LatestEpoch(dir); err != nil {
		return nil, err
	} else if ok {
		epoch = last + 1
	}
	o := opts.withDefaults()
	r := &Recorder{
		sys: sys,
		base: State{
			Config:        cfg,
			Speed:         o.Speed,
			MaxInFlight:   o.MaxInFlight,
			PriorRequests: o.PriorRequests,
			PriorAcked:    o.PriorAcked,
		},
		nextCorr: 1,
		stopSync: make(chan struct{}),
	}
	w, err := newWriter(dir, epoch, o)
	if err != nil {
		return nil, err
	}
	r.w = w

	// Genesis: capture the live state and make it durable before any
	// traffic can be recorded against it.
	st := r.base
	if err := captureInto(sys, &st); err != nil {
		w.close()
		return nil, err
	}
	if _, err := w.append(&Record{Type: recGenesis, Step: st.Step, VT: st.VT, State: &st}, true); err != nil {
		w.close()
		return nil, err
	}
	if err := w.sync(); err != nil {
		w.close()
		return nil, err
	}

	if o.Fsync == FsyncInterval {
		go r.syncLoop(o.FsyncEvery)
	}
	return r, nil
}

func (r *Recorder) syncLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stopSync:
			return
		case <-t.C:
			_ = r.w.sync()
		}
	}
}

// Dir returns the journal directory; Epoch the epoch this recorder
// appends to.
func (r *Recorder) Dir() string { return r.w.dir }
func (r *Recorder) Epoch() int  { return r.w.epoch }

// SnapshotEvery exposes the configured periodic-snapshot cadence (0
// when disabled) — the serve layer drives the ticker.
func (r *Recorder) SnapshotEvery() time.Duration { return r.w.opts.SnapshotEvery }

func (r *Recorder) stamp(rec *Record) {
	rec.Step = r.sys.EngineSteps()
	rec.VT = r.sys.Now()
}

// Infer records one externally-submitted inference request and returns
// its correlation ID (0 when the journal has failed; acks with corr 0
// are dropped). The record is buffered — call Commit before the
// injected closure returns so a coalesced batch reaches the kernel in
// one write.
func (r *Recorder) Infer(shard int, model string, slo time.Duration, priority int, tenant string, maxBatch int) uint64 {
	rec := Record{
		Type: recInfer, Shard: shard, Corr: r.nextCorr,
		Model: model, SLO: slo, Priority: priority, Tenant: tenant, MaxBatch: maxBatch,
	}
	r.stamp(&rec)
	if _, err := r.w.append(&rec, false); err != nil {
		return 0
	}
	r.nextCorr++
	r.dirty.Store(true)
	return rec.Corr
}

// Commit pushes buffered inference records to the kernel. Call it at
// the end of every injected closure that called Infer: it bounds the
// crash-loss window to one closure and keeps a coalesced batch's
// records in one write.
func (r *Recorder) Commit() {
	if !r.dirty.Load() {
		return
	}
	r.Flush()
}

// Ack records the acknowledged outcome of the request correlated as
// corr. It must run in the completion callback (engine side) before
// the response is queued toward the client; the record buffers until a
// Flush — which the transports issue immediately before putting any
// response on the wire, so the append still happens-before the client
// can observe the ack (the no-acked-request-lost invariant recovery
// reports against) while one write(2) covers every ack buffered since
// the last barrier.
func (r *Recorder) Ack(corr uint64, res clockwork.Result) {
	if corr == 0 {
		return
	}
	rec := Record{
		Type: recAck, Corr: corr, RequestID: res.RequestID,
		Success: res.Success, Reason: uint8(res.Reason),
		Latency: res.Latency, Batch: res.Batch, ColdStart: res.ColdStart,
	}
	r.stamp(&rec)
	r.dirty.Store(true)
	_, _ = r.w.append(&rec, false)
}

// Flush is the group-commit barrier: it pushes every buffered record
// into the kernel (write(2); plus fsync under FsyncAlways), and is a
// no-op when another responder already drained the buffer. Transports
// MUST call it between an acked completion and that response reaching
// the wire. Safe from any goroutine.
func (r *Recorder) Flush() {
	r.dirty.Store(false)
	_ = r.w.flush()
	if r.w.opts.Fsync == FsyncAlways {
		_ = r.w.sync()
	}
}

// Register records a model registration (copies == 0 for a single
// instance, > 0 for RegisterCopies).
func (r *Recorder) Register(instance, zoo string, copies int) {
	rec := Record{Type: recRegister, Instance: instance, Zoo: zoo, Copies: copies}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
}

// AddWorker, DrainWorker, FailWorker and Rebalance record the operator
// control-plane mutations.
func (r *Recorder) AddWorker() {
	rec := Record{Type: recAddWorker}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
}

// DrainWorker records a worker drain.
func (r *Recorder) DrainWorker(id int) {
	rec := Record{Type: recDrainWorker, WorkerID: id}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
}

// FailWorker records a worker fail.
func (r *Recorder) FailWorker(id int) {
	rec := Record{Type: recFailWorker, WorkerID: id}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
}

// Rebalance records an operator-triggered rebalance pass.
func (r *Recorder) Rebalance() {
	rec := Record{Type: recRebalance}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
}

// Autoscale records one closed-loop decision that moved something:
// the admission window now in force, addWorkers AddWorker calls,
// drainWorker as the drained worker's ID (-1 for none), and whether a
// rebalance pass ran. The decision is recorded, not the signals — a
// replay re-applies it at the recorded step and instant without
// re-deriving it, and a future snapshot's genesis carries the adapted
// window forward into recovery.
func (r *Recorder) Autoscale(window, addWorkers, drainWorker int, rebalance bool) {
	rec := Record{Type: recAutoscale, Window: window, AddWorkers: addWorkers, WorkerID: drainWorker, Rebal: rebalance}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, true)
	r.base.MaxInFlight = window
}

// Noop records an injected closure with no engine-visible effect — a
// stats or metrics scrape. Reads consume engine steps too; without
// their records the replay's step alignment would drift.
func (r *Recorder) Noop() {
	rec := Record{Type: recNoop}
	r.stamp(&rec)
	_, _ = r.w.append(&rec, false)
	r.dirty.Store(true)
}

// SnapshotInfo describes one taken snapshot.
type SnapshotInfo struct {
	Path  string
	Seq   uint64
	Step  uint64
	VT    time.Duration
	Bytes int64
	// Models and Workers count what the snapshot captured.
	Models  int
	Workers int
	// PrunedSegments counts segments removed under RetainToSnapshot.
	PrunedSegments int
}

// Snapshot captures the current control-plane state, writes it durably
// to a snapshot file, then appends the marker record — so a marker in
// the log implies its file is complete on disk. Engine-confined, like
// every record method (serve wraps it in Live.Do; the marker is that
// injection's record). Cumulative request accounting rides the
// snapshot so recovery reports lifetime totals.
func (r *Recorder) Snapshot() (SnapshotInfo, error) {
	st := r.base
	st.PriorRequests = r.base.PriorRequests + r.w.infers.Load()
	st.PriorAcked = r.base.PriorAcked + r.w.acks.Load()
	if err := captureInto(r.sys, &st); err != nil {
		return SnapshotInfo{}, err
	}
	// Everything recorded so far must be on disk before the snapshot
	// claims to cover it.
	if err := r.w.sync(); err != nil {
		return SnapshotInfo{}, err
	}
	seq := r.w.peekNextSeq()
	payload := appendRecord(nil, &Record{Type: recGenesis, Seq: seq, Step: st.Step, VT: st.VT, State: &st})
	path, size, err := r.w.writeSnapshotFile(seq, payload)
	if err != nil {
		return SnapshotInfo{}, err
	}
	marker := Record{Type: recSnapshot}
	r.stamp(&marker)
	mseq, err := r.w.append(&marker, true)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if mseq != seq {
		// Another append raced between peek and marker — impossible
		// while engine-confined, so treat it as the bug it would be.
		return SnapshotInfo{}, fmt.Errorf("journal: snapshot marker landed at seq %d, file named for %d", mseq, seq)
	}
	info := SnapshotInfo{
		Path: path, Seq: seq, Step: st.Step, VT: st.VT, Bytes: size,
		Models: len(st.Models), Workers: len(st.Workers),
	}
	if r.w.opts.Retain == RetainToSnapshot {
		info.PrunedSegments = r.w.pruneTo(seq)
	}
	r.snapCount.Add(1)
	r.lastSnapUnix.Store(time.Now().UnixNano())
	r.lastSnapMu.Lock()
	r.lastSnapPath = path
	r.lastSnapSeq = seq
	r.lastSnapMu.Unlock()
	return info, nil
}

// Status is a point-in-time view of the journal, safe from any
// goroutine (the admin plane and /metrics read it without touching the
// engine).
type Status struct {
	Dir   string
	Epoch int

	Segments int
	Bytes    int64
	Records  uint64
	Infers   uint64
	Acks     uint64

	Fsync         FsyncPolicy
	UnsyncedBytes int64
	// FsyncLag is the time since the last completed fsync (0 when
	// nothing is pending).
	FsyncLag time.Duration

	Snapshots        uint64
	LastSnapshotPath string
	LastSnapshotSeq  uint64
	// LastSnapshotAge is the wall-clock time since the last snapshot
	// (negative when none has been taken).
	LastSnapshotAge time.Duration

	Failed bool
	Err    string
}

// Status returns current journal gauges.
func (r *Recorder) Status() Status {
	s := Status{
		Dir:      r.w.dir,
		Epoch:    r.w.epoch,
		Segments: int(r.w.segments.Load()),
		Bytes:    r.w.bytesTotal.Load(),
		Records:  r.w.records.Load(),
		Infers:   r.w.infers.Load(),
		Acks:     r.w.acks.Load(),
		Fsync:    r.w.opts.Fsync,
	}
	s.UnsyncedBytes = r.w.unsyncedPub.Load()
	if s.UnsyncedBytes > 0 {
		s.FsyncLag = time.Since(time.Unix(0, r.w.lastSync.Load()))
	}
	s.Snapshots = r.snapCount.Load()
	if t := r.lastSnapUnix.Load(); t > 0 {
		s.LastSnapshotAge = time.Since(time.Unix(0, t))
	} else {
		s.LastSnapshotAge = -1
	}
	r.lastSnapMu.Lock()
	s.LastSnapshotPath = r.lastSnapPath
	s.LastSnapshotSeq = r.lastSnapSeq
	r.lastSnapMu.Unlock()
	if r.w.failed.Load() {
		s.Failed = true
		r.w.mu.Lock()
		if r.w.err != nil {
			s.Err = r.w.err.Error()
		}
		r.w.mu.Unlock()
	}
	return s
}

// Close stops the background syncer, flushes and fsyncs the tail, and
// closes the open segment. Idempotent; call it after Live.Stop (the
// engine goroutine is gone, so no appends race it).
func (r *Recorder) Close() error {
	r.closeOnce.Do(func() {
		close(r.stopSync)
		r.closeErr = r.w.close()
	})
	return r.closeErr
}
