package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzJournalDecode when JOURNAL_WRITE_CORPUS is set.
// Run it after changing the wire format so `go test -run Fuzz` on a
// fresh checkout still seeds from every record type.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("JOURNAL_WRITE_CORPUS") == "" {
		t.Skip("set JOURNAL_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seed := encodeSeedStream()
	for name, data := range map[string][]byte{
		"seed-all-records":   seed,
		"seed-truncated":     seed[:frameHeaderSize+3],
		"seed-zero-header":   {0, 0, 0, 0, 0, 0, 0, 0},
		"seed-oversized":     {255, 255, 255, 255, 0, 0, 0, 0},
		"seed-trailing-junk": append(append([]byte{}, seed...), 1, 2, 3),
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// encodeSeedStream builds one byte stream containing every record type —
// the canonical seed for the decoder fuzzer (also committed under
// testdata/fuzz/FuzzJournalDecode).
func encodeSeedStream() []byte {
	var stream []byte
	recs := sampleRecords()
	for i := range recs {
		stream = appendFrame(stream, appendRecord(nil, &recs[i]))
	}
	return stream
}

// FuzzJournalDecode throws arbitrary bytes at the frame scanner and
// record decoder: they must never panic, torn/corrupt errors must stay
// in their typed classes, and every record that decodes cleanly must
// survive an encode→decode round trip to the same value.
func FuzzJournalDecode(f *testing.F) {
	seed := encodeSeedStream()
	f.Add(seed)
	f.Add(seed[:frameHeaderSize+3])               // truncated mid-frame
	f.Add([]byte{})                               // empty stream
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})         // zero-length payload, zero CRC
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}) // oversized length header
	f.Add(append(append([]byte{}, seed...), 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			payload, next, err := readFrame(data, off)
			if err != nil {
				if !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("readFrame: unexpected error class %v", err)
				}
				return
			}
			if next <= off {
				t.Fatalf("readFrame did not advance: off %d -> %d", off, next)
			}
			var rec Record
			if err := decodeRecord(payload, &rec); err != nil {
				if !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("decodeRecord: unexpected error class %v", err)
				}
				return
			}
			// Canonical fixed point. Byte identity with the input is NOT
			// required — varints admit non-canonical encodings the decoder
			// accepts — but re-encoding must be stable: the re-encoded
			// form decodes, and encoding that decode reproduces the same
			// bytes. (Byte comparison, not DeepEqual, so a NaN Speed in a
			// fuzzed state can't trip float equality.)
			re := appendRecord(nil, &rec)
			var rec2 Record
			if err := decodeRecord(re, &rec2); err != nil {
				t.Fatalf("re-encoded record failed decode: %v", err)
			}
			if re2 := appendRecord(nil, &rec2); !bytes.Equal(re, re2) {
				t.Fatalf("round trip drift:\n first  %x\n second %x", re, re2)
			}
			off = next
		}
	})
}
