package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when appended frames are forced to stable
// storage. Every append reaches the kernel in one write(2) regardless —
// process death (SIGKILL) cannot lose or tear an acknowledged frame;
// the policy only governs machine-crash durability.
type FsyncPolicy int

const (
	// FsyncInterval (the default) fsyncs on a background cadence
	// (Options.FsyncEvery) and at rotation/close.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every flushed append batch — full
	// machine-crash durability at a goodput cost (see EXPERIMENTS.md).
	FsyncAlways
	// FsyncNever fsyncs only at rotation and close.
	FsyncNever
)

// String implements fmt.Stringer (flag values round-trip through it).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -journal-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want interval, always or never)", s)
}

// Retention selects how much history an epoch keeps on disk.
type Retention int

const (
	// RetainAll (the default) keeps every segment — required for
	// bit-exact replay of the epoch, which must start from genesis.
	RetainAll Retention = iota
	// RetainToSnapshot prunes segments wholly covered by the latest
	// durable snapshot. Recovery stays exact; deterministic replay of
	// this epoch is forfeited (cmd/clockwork-replay needs the genesis
	// chain).
	RetainToSnapshot
)

// File naming within a journal directory. The segment suffix is the
// sequence number of its first record, so the chain orders and
// validates by name alone; the snapshot suffix is the seq of its
// marker record (the first seq NOT covered by the snapshot file).
const (
	segPattern  = "epoch-%06d-seg-%012d.wal"
	snapPattern = "epoch-%06d-snap-%012d.snap"
)

// writer owns the on-disk epoch: the open segment, the append buffer,
// rotation and pruning. All methods are mutex-guarded — appends come
// from the engine goroutine, fsyncs from the background syncer, Close
// from the daemon's shutdown path. A write error latches the writer
// into a failed state (visible in Status); later appends are dropped
// rather than blocking the serving path.
type writer struct {
	mu       sync.Mutex
	dir      string
	epoch    int
	opts     Options
	f        *os.File
	segStart uint64   // first seq in the open segment
	starts   []uint64 // start seq of every live segment, ascending
	nextSeq  uint64
	segBytes int64
	pending  []byte // encoded frames not yet written to the kernel
	scratch  []byte
	dirty    bool // bytes written since the last fsync
	err      error

	// Status mirrors, readable without the mutex.
	bytesTotal  atomic.Int64
	unsyncedPub atomic.Int64
	records     atomic.Uint64
	infers      atomic.Uint64
	acks        atomic.Uint64
	segments    atomic.Int64
	lastSync    atomic.Int64 // unix nanos of the last completed fsync
	failed      atomic.Bool
}

func newWriter(dir string, epoch int, opts Options) (*writer, error) {
	w := &writer{dir: dir, epoch: epoch, opts: opts, nextSeq: 0}
	if err := w.openSegmentLocked(0); err != nil {
		return nil, err
	}
	w.lastSync.Store(time.Now().UnixNano())
	return w, nil
}

func (w *writer) segPath(start uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf(segPattern, w.epoch, start))
}

func (w *writer) snapPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf(snapPattern, w.epoch, seq))
}

func (w *writer) openSegmentLocked(start uint64) error {
	f, err := os.OpenFile(w.segPath(start), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.segStart = start
	w.segBytes = 0
	w.starts = append(w.starts, start)
	w.segments.Store(int64(len(w.starts)))
	return nil
}

func (w *writer) failLocked(err error) {
	if w.err == nil {
		w.err = err
		w.failed.Store(true)
	}
}

// append encodes r (assigning its Seq), stamps it into the pending
// buffer, and — when flush is set — pushes the buffer to the kernel.
// Mutating records flush; per-item inference records buffer until the
// injected closure's end (Recorder.Commit) so a coalesced batch costs
// one write(2).
func (w *writer) append(r *Record, flush bool) (seq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	r.Seq = w.nextSeq
	w.nextSeq++
	w.scratch = appendRecord(w.scratch[:0], r)
	if len(w.scratch) > MaxRecordSize {
		err := fmt.Errorf("journal: record type %d encodes to %d bytes (max %d)", r.Type, len(w.scratch), MaxRecordSize)
		w.failLocked(err)
		return 0, err
	}
	w.pending = appendFrame(w.pending, w.scratch)
	w.records.Add(1)
	switch r.Type {
	case recInfer:
		w.infers.Add(1)
	case recAck:
		w.acks.Add(1)
	}
	if flush {
		if err := w.flushLocked(); err != nil {
			return 0, err
		}
		if w.opts.Fsync == FsyncAlways {
			if err := w.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return r.Seq, nil
}

// flushLocked writes the pending buffer to the open segment and rotates
// when the segment exceeds the size bound.
func (w *writer) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.pending) == 0 {
		return nil
	}
	n, err := w.f.Write(w.pending)
	w.segBytes += int64(n)
	w.bytesTotal.Add(int64(n))
	w.pending = w.pending[:0]
	w.dirty = true
	w.unsyncedPub.Add(int64(n))
	if err != nil {
		w.failLocked(fmt.Errorf("journal: segment write: %w", err))
		return w.err
	}
	if w.segBytes >= w.opts.MaxSegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

func (w *writer) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.failLocked(fmt.Errorf("journal: segment close: %w", err))
		return w.err
	}
	if err := w.openSegmentLocked(w.nextSeq); err != nil {
		w.failLocked(fmt.Errorf("journal: segment open: %w", err))
		return w.err
	}
	return nil
}

func (w *writer) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.failLocked(fmt.Errorf("journal: fsync: %w", err))
		return w.err
	}
	w.dirty = false
	w.unsyncedPub.Store(0)
	w.lastSync.Store(time.Now().UnixNano())
	return nil
}

// flush pushes buffered frames to the kernel (the ack-durability
// barrier); sync additionally forces them to stable storage.
func (w *writer) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *writer) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.syncLocked()
}

// writeSnapshotFile durably writes one state frame to the snapshot file
// named for seq (written before the recSnapshot marker is appended, so
// a marker's presence implies its file is complete on disk).
func (w *writer) writeSnapshotFile(seq uint64, payload []byte) (path string, size int64, err error) {
	path = w.snapPath(seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", 0, err
	}
	framed := appendFrame(nil, payload)
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, err
	}
	return path, int64(len(framed)), nil
}

// nextSeqLocked exposes the seq the next append will take — the name a
// snapshot captured now must carry.
func (w *writer) peekNextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// pruneTo removes segments every record of which precedes seq (the
// latest snapshot's marker). The open segment and the segment
// containing seq always survive.
func (w *writer) pruneTo(seq uint64) (removed int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.starts) >= 2 && w.starts[1] <= seq {
		path := w.segPath(w.starts[0])
		if err := os.Remove(path); err != nil {
			break
		}
		w.starts = w.starts[1:]
		removed++
	}
	w.segments.Store(int64(len(w.starts)))
	return removed
}

func (w *writer) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	flushErr := w.flushLocked()
	syncErr := w.syncLocked()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
