package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"clockwork"
	"clockwork/trace"
)

// This file holds the two consumers of a recorded epoch: deterministic
// replay (ReplayEpoch — rebuild the genesis system and re-execute every
// injection at its recorded step and instant) and crash recovery
// (EpochData.Rebuild — restore the latest snapshot and re-apply the
// control-plane mutations after it).

// ---- outcome hash ----

// The outcome hash digests the acknowledgement stream: for each ack, in
// order, the tuple (corr, request ID, success, reason, latency, batch,
// cold start, engine step, virtual instant). A recorded run and its
// replay hash identically exactly when every client-visible outcome —
// and its position in the deterministic execution — matches. The same
// sha256-over-outcomes technique fingerprints the simulation goldens
// (internal/experiments).

func hashAck(h hash.Hash, corr, reqID uint64, success bool, reason uint8, latency time.Duration, batch int, cold bool, step uint64, vt time.Duration) {
	var buf [58]byte
	binary.LittleEndian.PutUint64(buf[0:], corr)
	binary.LittleEndian.PutUint64(buf[8:], reqID)
	if success {
		buf[16] = 1
	}
	buf[17] = reason
	binary.LittleEndian.PutUint64(buf[18:], uint64(latency))
	binary.LittleEndian.PutUint64(buf[26:], uint64(batch))
	if cold {
		buf[34] = 1
	}
	binary.LittleEndian.PutUint64(buf[35:], step)
	binary.LittleEndian.PutUint64(buf[43:], uint64(vt))
	h.Write(buf[:])
}

// ReplayResult reports a deterministic replay.
type ReplayResult struct {
	// RecordedHash digests the epoch's recorded ack stream;
	// ReplayedHash the re-executed one. Match reports equality.
	RecordedHash string
	ReplayedHash string
	Match        bool

	Requests     uint64 // inference records re-executed
	RecordedAcks uint64
	ReplayedAcks uint64

	FinalStep uint64
	FinalVT   time.Duration

	Summary clockwork.Summary
}

// ReplayEpoch re-executes a recorded epoch through the simulator:
// rebuild the genesis system, then apply every recorded injection at
// its recorded engine step and virtual instant. Returns an error on
// divergence (an injection landing at the wrong step or instant) — a
// journal/config mismatch, not a soft failure. Requires the genesis
// chain (unavailable after RetainToSnapshot pruning).
func ReplayEpoch(e *EpochData) (*ReplayResult, error) {
	return ReplayEpochTraced(e, nil)
}

// ReplayEpochTraced is ReplayEpoch with a flight recorder attached to
// the rebuilt system — the post-hoc tracing workflow: a journaled
// incident replays with tracing at sample rate 1.0 even though the
// live run recorded nothing. The recorder is a pure observer, so the
// outcome hashes match the recording exactly as in an untraced replay;
// after a successful return the recorder holds every replayed
// request's lifecycle (the engine is quiescent, so Snapshot is safe).
// A nil flight degrades to plain ReplayEpoch.
func ReplayEpochTraced(e *EpochData, flight *trace.Recorder) (*ReplayResult, error) {
	if e.Genesis == nil {
		return nil, fmt.Errorf("journal: epoch %d has no genesis (pruned to snapshot?); deterministic replay needs the full chain", e.Epoch)
	}
	sys, err := BuildSystem(e.Genesis)
	if err != nil {
		return nil, err
	}
	if flight != nil {
		sys.AttachFlightRecorder(flight)
	}
	rp := sys.Replay()

	res := &ReplayResult{}
	recHash := sha256.New()
	repHash := sha256.New()
	onResult := func(corr uint64) func(clockwork.Result) {
		return func(r clockwork.Result) {
			hashAck(repHash, corr, r.RequestID, r.Success, uint8(r.Reason), r.Latency, r.Batch, r.ColdStart, sys.EngineSteps(), sys.Now())
			res.ReplayedAcks++
		}
	}

	var lastAckStep uint64
	recs := e.Records
	for i := 0; i < len(recs); i++ {
		rec := &recs[i]
		switch rec.Type {
		case recGenesis:
			// Seq 0 opens the epoch; BuildSystem already consumed it.
		case recAck:
			hashAck(recHash, rec.Corr, rec.RequestID, rec.Success, rec.Reason, rec.Latency, rec.Batch, rec.ColdStart, rec.Step, rec.VT)
			res.RecordedAcks++
			lastAckStep = rec.Step
		case recInfer:
			// One injected closure recorded one recInfer per request,
			// all stamped with the closure's step — regroup them so the
			// replayed closure submits the same batch in one engine
			// turn.
			j := i
			for j+1 < len(recs) && recs[j+1].Type == recInfer && recs[j+1].Step == rec.Step {
				j++
			}
			group := recs[i : j+1]
			err := rp.Apply(rec.Step, rec.VT, func() {
				for k := range group {
					g := &group[k]
					req := clockwork.Request{
						Model:        g.Model,
						SLO:          g.SLO,
						Priority:     g.Priority,
						Tenant:       g.Tenant,
						MaxBatchSize: g.MaxBatch,
						OnResult:     onResult(g.Corr),
					}
					// A submission the live run saw fail (unknown
					// model, draining) recorded no ack; it fails here
					// identically and contributes nothing either.
					_, _ = sys.SubmitRequestOn(g.Shard, req, nil)
					res.Requests++
				}
			})
			if err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			i = j
		case recRegister:
			rec := rec
			if err := rp.Apply(rec.Step, rec.VT, func() {
				if rec.Copies > 0 {
					_, _ = sys.RegisterCopies(rec.Instance, rec.Zoo, rec.Copies)
				} else {
					_ = sys.RegisterModel(rec.Instance, rec.Zoo)
				}
			}); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recAddWorker:
			if err := rp.Apply(rec.Step, rec.VT, func() { sys.AddWorker() }); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recDrainWorker:
			id := rec.WorkerID
			if err := rp.Apply(rec.Step, rec.VT, func() { _ = sys.DrainWorker(id) }); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recFailWorker:
			id := rec.WorkerID
			if err := rp.Apply(rec.Step, rec.VT, func() { _ = sys.FailWorker(id) }); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recRebalance:
			if err := rp.Apply(rec.Step, rec.VT, func() { sys.Rebalance() }); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recAutoscale:
			// Re-apply the recorded decision's engine-visible actuations.
			// The window itself lives at the serve layer (admission is
			// outside the engine) and needs no replay — but the worker
			// ops ran inside the decision's injected closure and must
			// land at the same step.
			add, drain, reb := rec.AddWorkers, rec.WorkerID, rec.Rebal
			if err := rp.Apply(rec.Step, rec.VT, func() {
				for k := 0; k < add; k++ {
					sys.AddWorker()
				}
				if drain >= 0 {
					_ = sys.DrainWorker(drain)
				}
				if reb {
					sys.Rebalance()
				}
			}); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		case recNoop, recSnapshot:
			// The closure read state and scheduled nothing — but it
			// consumed an engine step, so consume one here too.
			if err := rp.Apply(rec.Step, rec.VT, func() {}); err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
		default:
			return nil, fmt.Errorf("journal: replay of unknown record type %d (seq %d)", rec.Type, rec.Seq)
		}
	}

	// Run the tail out to the last recorded acknowledgement: every
	// completion the live run acked fires in this window; completions
	// past it were never acked (the daemon stopped first) and are
	// excluded on both sides.
	if lastAckStep > rp.Steps() {
		if err := rp.StepTo(lastAckStep); err != nil {
			return nil, fmt.Errorf("stepping to final ack: %w", err)
		}
	}

	res.RecordedHash = hex.EncodeToString(recHash.Sum(nil))
	res.ReplayedHash = hex.EncodeToString(repHash.Sum(nil))
	res.Match = res.RecordedHash == res.ReplayedHash && res.RecordedAcks == res.ReplayedAcks
	res.FinalStep = rp.Steps()
	res.FinalVT = sys.Now()
	res.Summary = sys.Summary()
	return res, nil
}

// ---- crash recovery ----

// RecoveryReport summarizes what a Rebuild restored.
type RecoveryReport struct {
	Epoch        int
	UsedSnapshot bool

	// Models and Workers count the rebuilt control plane.
	Models  int
	Workers int
	// AppliedOps counts post-snapshot control-plane mutations
	// re-applied from the log tail.
	AppliedOps int

	// EpochRequests/EpochAcked count this epoch's recorded inference
	// traffic; Unacked are requests recorded as submitted whose
	// acknowledgement never reached the journal — their clients saw a
	// connection failure, never a success, so dropping them is correct
	// (re-executing them would duplicate work the clients will retry).
	EpochRequests uint64
	EpochAcked    uint64
	Unacked       uint64

	// TotalRequests/TotalAcked are lifetime counts across every epoch
	// in the directory.
	TotalRequests uint64
	TotalAcked    uint64

	Truncated     bool
	TruncatedNote string
}

// Rebuild restores the epoch's final control-plane state: BuildSystem
// on the latest snapshot (or the genesis), then the post-snapshot
// control-plane mutations re-applied from the log tail. Recorded
// inference traffic is accounted, not re-executed. The returned carry
// state holds the configuration and cumulative accounting the next
// epoch's Create should inherit.
func (e *EpochData) Rebuild() (*clockwork.System, *State, *RecoveryReport, error) {
	base := e.Genesis
	var baseSeq uint64
	usedSnap := false
	if e.Snapshot != nil {
		base = e.Snapshot
		baseSeq = e.SnapshotSeq
		usedSnap = true
	}
	sys, err := BuildSystem(base)
	if err != nil {
		return nil, nil, nil, err
	}
	rep := &RecoveryReport{
		Epoch:         e.Epoch,
		UsedSnapshot:  usedSnap,
		Truncated:     e.Truncated,
		TruncatedNote: e.TruncatedNote,
	}

	acked := make(map[uint64]bool)
	var tailReq, tailAck uint64
	lastWindow := -1
	for i := range e.Records {
		rec := &e.Records[i]
		switch rec.Type {
		case recInfer:
			rep.EpochRequests++
			if rec.Seq > baseSeq {
				tailReq++
			}
		case recAck:
			rep.EpochAcked++
			acked[rec.Corr] = true
			if rec.Seq > baseSeq {
				tailAck++
			}
		}
		if rec.Seq <= baseSeq {
			continue
		}
		switch rec.Type {
		case recRegister:
			if rec.Copies > 0 {
				_, err = sys.RegisterCopies(rec.Instance, rec.Zoo, rec.Copies)
			} else {
				err = sys.RegisterModel(rec.Instance, rec.Zoo)
			}
			// A registration that failed live (duplicate name) fails
			// identically here; both outcomes restore the same
			// registry.
			_ = err
			rep.AppliedOps++
		case recAddWorker:
			sys.AddWorker()
			rep.AppliedOps++
		case recDrainWorker:
			_ = sys.DrainWorker(rec.WorkerID)
			rep.AppliedOps++
		case recFailWorker:
			_ = sys.FailWorker(rec.WorkerID)
			rep.AppliedOps++
		case recRebalance:
			sys.Rebalance()
			rep.AppliedOps++
		case recAutoscale:
			for k := 0; k < rec.AddWorkers; k++ {
				sys.AddWorker()
			}
			if rec.WorkerID >= 0 {
				_ = sys.DrainWorker(rec.WorkerID)
			}
			if rec.Rebal {
				sys.Rebalance()
			}
			lastWindow = rec.Window
			rep.AppliedOps++
		}
	}
	for i := range e.Records {
		rec := &e.Records[i]
		if rec.Type == recInfer && !acked[rec.Corr] {
			rep.Unacked++
		}
	}
	rep.Models = sys.ModelCount()
	rep.Workers = sys.Workers()
	rep.TotalRequests = base.PriorRequests + tailReq
	rep.TotalAcked = base.PriorAcked + tailAck

	carry := *base
	carry.Models = nil
	carry.Workers = nil
	carry.PriorRequests = rep.TotalRequests
	carry.PriorAcked = rep.TotalAcked
	// The closed loop's last window decision after the snapshot
	// supersedes the snapshot's admission config: a recovered daemon
	// restarts with the window the loop had converged to.
	if lastWindow >= 0 {
		carry.MaxInFlight = lastWindow
	}
	return sys, &carry, rep, nil
}
