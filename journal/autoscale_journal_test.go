package journal_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"clockwork"
	"clockwork/journal"
	"clockwork/serve"
)

// TestAutoscalerDecisionsReplayDeterministically closes the loop
// between the closed control loop and the durable one: a journaled
// run with the autoscaler enabled — its decisions shrinking the
// window and adding workers mid-traffic, plus one operator override
// through the admin plane — must replay to a hash MATCH. The property
// this pins: every autoscaler decision is injection-sourced (one
// engine step, one journal record, applied at a virtual instant), so
// the replay re-applies the recorded decisions without re-deriving
// them and lands on the identical ack stream. A wall-clock-sourced
// decision would shift engine steps between record and replay and
// break the hash.
func TestAutoscalerDecisionsReplayDeterministically(t *testing.T) {
	dir := t.TempDir()
	cfg := clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 3}
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec, err := journal.Create(dir, sys, cfg, journal.Options{
		Fsync: journal.FsyncNever, Speed: 2000, MaxInFlight: 32,
	})
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	// Aggressive loop: every period with violations shrinks and asks
	// for a worker (sustain/cooldown 1), so a short burst of doomed
	// traffic is guaranteed to journal real decisions.
	asc := serve.AutoscaleConfig{
		Period:    500 * time.Millisecond,
		MinWindow: 2, MaxWindow: 32,
		MinWorkers: 1, MaxWorkers: 3,
		GrowSustain: 1, WorkerSustain: 1, Cooldown: 1,
	}
	srv := serve.New(sys, serve.Options{Speed: 2000, MaxInFlight: 32, Journal: rec, Autoscale: &asc})
	ts := httptest.NewServer(srv.Handler())
	client := serve.NewClient(ts.URL, nil)
	shutdown := func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}

	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	// Doomed traffic: a 1ms SLO no model can meet, so every period
	// completes with a 100% violation rate.
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Millisecond})
		}()
	}
	wg.Wait()

	// The loop runs on wall ticks; wait until the admin plane reports
	// it actually moved (window shrank below its start, ≥ 1 decision).
	getStatus := func() serve.AutoscalerStatusResponse {
		resp, err := http.Get(ts.URL + "/v1/admin/autoscaler")
		if err != nil {
			t.Fatalf("GET autoscaler: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET autoscaler: status %d: %s", resp.StatusCode, body)
		}
		var st serve.AutoscalerStatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("autoscaler status: %v (%s)", err, body)
		}
		return st
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus()
		if st.Decisions >= 1 && st.Window < 32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("autoscaler never moved: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One operator override through the admin plane: journaled as an
	// autoscale record via the same injection path as loop decisions.
	req, _ := json.Marshal(map[string]int{"window": 24})
	resp, err := http.Post(ts.URL+"/v1/admin/autoscaler", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatalf("POST autoscaler: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST autoscaler: status %d", resp.StatusCode)
	}

	// A little more traffic after the override so replay crosses it.
	for i := 0; i < 8; i++ {
		if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
			t.Fatalf("Infer: %v", err)
		}
	}
	final := getStatus()
	shutdown()

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := journal.ReplayEpoch(ep)
	if err != nil {
		t.Fatalf("ReplayEpoch: %v", err)
	}
	if !res.Match {
		t.Fatalf("replay mismatch with autoscaler decisions in the journal:\n recorded %s (%d acks)\n replayed %s (%d acks)\n final autoscaler: %+v",
			res.RecordedHash, res.RecordedAcks, res.ReplayedHash, res.ReplayedAcks, final)
	}
	if res.RecordedAcks < 9 {
		t.Fatalf("recorded only %d acks, want >= 9", res.RecordedAcks)
	}
}
