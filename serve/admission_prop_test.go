package serve

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// TestAdmissionWindowNeverLeaksUnderChurn is the property behind
// TestHTTPDisconnectKeepsWindowCharged, generalised: under a
// randomized schedule of HTTP and stream inferences — some cancelled
// mid-flight, some with SLOs tight enough to be dead on arrival, some
// shed at the window, with a worker drained and another added mid-run
// — every admission slot must come back exactly once. The schedule is
// drawn from a fixed seed so the op mix replays identically; the
// goroutine interleaving stays free, which is the point: no
// interleaving of cancel/disconnect/drain may strand or double-release
// a slot. Run under -race this also proves the slot accounting is
// data-race-free across both front doors.
func TestAdmissionWindowNeverLeaksUnderChurn(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := New(sys, Options{Speed: 50, MaxInFlight: 6})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen http: %v", err)
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen stream: %v", err)
	}
	go func() { _ = srv.Serve(hln) }()
	streamErr := make(chan error, 1)
	go func() { streamErr <- srv.ServeStream(sln) }()
	client := NewClient(hln.Addr().String(), nil)
	sc, err := DialStream(sln.Addr().String(), StreamOptions{Conns: 2})
	if err != nil {
		t.Fatalf("DialStream: %v", err)
	}
	t.Cleanup(func() {
		_ = sc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-streamErr; err != nil {
			t.Errorf("ServeStream: %v", err)
		}
	})

	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	// Deterministic op schedule from a fixed seed: transport,
	// cancellation point, SLO tightness and launch stagger per op.
	rnd := rand.New(rand.NewSource(11))
	type op struct {
		stream      bool
		cancelAfter time.Duration // 0 = let it run
		slo         time.Duration
		pause       time.Duration // stagger before launch
	}
	ops := make([]op, 96)
	for i := range ops {
		o := op{stream: rnd.Intn(2) == 0, slo: 10 * time.Second,
			pause: time.Duration(rnd.Intn(4)) * time.Millisecond}
		switch rnd.Intn(3) {
		case 0: // client walks away mid-request
			o.cancelAfter = time.Duration(1+rnd.Intn(25)) * time.Millisecond
		case 1: // dead on arrival: outcome is a fast SLO abort
			o.slo = 2 * time.Millisecond
		}
		ops[i] = o
	}

	var wg sync.WaitGroup
	for i, o := range ops {
		time.Sleep(o.pause)
		wg.Add(1)
		go func(o op) {
			defer wg.Done()
			ictx := ctx
			if o.cancelAfter > 0 {
				var cancel context.CancelFunc
				ictx, cancel = context.WithTimeout(ctx, o.cancelAfter)
				defer cancel()
			}
			req := clockwork.Request{Model: "m", SLO: o.slo}
			// Every terminal state — success, SLO miss, shed
			// (ErrOverloaded), cancel — is a legal outcome here; the
			// property under test is the slot accounting, not the verdict.
			if o.stream {
				_, _ = sc.Infer(ictx, req)
			} else {
				_, _ = client.Infer(ictx, req)
			}
		}(o)
		// Worker membership churns mid-schedule: capacity changes must
		// not disturb slot accounting either.
		switch i {
		case len(ops) / 3:
			if err := srv.Live().Do(func() { _ = sys.DrainWorker(1) }); err != nil {
				t.Fatalf("drain: %v", err)
			}
		case 2 * len(ops) / 3:
			if err := srv.Live().Do(func() { sys.AddWorker() }); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
	}
	wg.Wait()

	// Each admitted request holds its slot until the engine outcome, so
	// after the clients return the count may lag — but it must reach
	// exactly zero, never a stranded positive or an over-released
	// negative.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		n := srv.inflightN
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if n < 0 {
			t.Fatalf("inflightN = %d: an admission slot was released twice", n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflightN = %d after full drain, want 0: admission slot leaked", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
