//go:build !race

package serve

// e2eRequests is the end-to-end acceptance volume: 100k requests
// through the full loopback HTTP path. Under the race detector the
// same path runs at a fraction of the speed, so race builds (and
// -short runs) use a reduced volume — the integrity invariants checked
// are identical.
const e2eRequests = 100_000
