package serve

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// newTestStreamServer wires a live system behind both front doors: an
// HTTP listener (for admin/registration convenience) and a stream
// listener. It returns the server, an HTTP client, and a connected
// StreamClient.
func newTestStreamServer(t *testing.T, cfg clockwork.Config, opts Options) (*Server, *Client, *StreamClient) {
	t.Helper()
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := New(sys, opts)
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen http: %v", err)
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen stream: %v", err)
	}
	go func() { _ = srv.Serve(hln) }()
	streamErr := make(chan error, 1)
	go func() { streamErr <- srv.ServeStream(sln) }()
	client := NewClient(hln.Addr().String(), nil)
	sc, err := DialStream(sln.Addr().String(), StreamOptions{Conns: 2})
	if err != nil {
		t.Fatalf("DialStream: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-streamErr; err != nil {
			t.Errorf("ServeStream: %v", err)
		}
		sc.Close()
	})
	return srv, client, sc
}

func TestStreamRoundTrip(t *testing.T) {
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 1, GPUsPerWorker: 1}, Options{Speed: 1000})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	models, err := sc.Models(ctx)
	if err != nil || len(models) != 1 || models[0] != "resnet" {
		t.Fatalf("Models = %v, %v; want [resnet]", models, err)
	}

	res, err := sc.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !res.Success || res.RequestID == 0 || res.Latency <= 0 || res.Model != "resnet" {
		t.Fatalf("implausible result: %+v", res)
	}
	if !res.ColdStart {
		t.Errorf("first request should be a cold start: %+v", res)
	}

	// Concurrent multiplexed submissions over the shared connections.
	const n = 64
	var wg sync.WaitGroup
	results := make([]clockwork.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sc.Infer(ctx, clockwork.Request{Model: "resnet", SLO: time.Second})
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !results[i].Success {
			t.Fatalf("request %d failed: %+v", i, results[i])
		}
		if seen[results[i].RequestID] {
			t.Fatalf("request ID %d delivered to two callers", results[i].RequestID)
		}
		seen[results[i].RequestID] = true
	}
}

func TestStreamSubmitBatch(t *testing.T) {
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 1, GPUsPerWorker: 2}, Options{Speed: 1000})
	ctx := context.Background()
	if _, err := client.RegisterCopies(ctx, "res", "resnet50_v1b", 2); err != nil {
		t.Fatalf("RegisterCopies: %v", err)
	}
	reqs := make([]clockwork.Request, 16)
	for i := range reqs {
		reqs[i] = clockwork.Request{Model: "res#" + string(rune('0'+i%2)), SLO: time.Second}
	}
	// One bad request in the middle: positional outcome, not a batch
	// failure.
	reqs[7].Model = "no-such-model"
	outs, err := sc.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(outs) != len(reqs) {
		t.Fatalf("got %d outcomes for %d requests", len(outs), len(reqs))
	}
	for i, o := range outs {
		if i == 7 {
			if !errors.Is(o.Err, clockwork.ErrUnknownModel) {
				t.Fatalf("outcome %d: %v, want ErrUnknownModel", i, o.Err)
			}
			continue
		}
		if o.Err != nil || !o.Result.Success {
			t.Fatalf("outcome %d: %+v, %v", i, o.Result, o.Err)
		}
		if o.Result.Model != reqs[i].Model {
			t.Fatalf("outcome %d: model %q, want %q", i, o.Result.Model, reqs[i].Model)
		}
	}
}

// TestStreamTypedErrors: the error taxonomy must round-trip the binary
// wire exactly as it does JSON.
func TestStreamTypedErrors(t *testing.T) {
	_, client, sc := newTestStreamServer(t, clockwork.Config{}, Options{Speed: 1000})
	ctx := context.Background()

	_, err := sc.Infer(ctx, clockwork.Request{Model: "nope", SLO: time.Second})
	if !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("unknown model: got %v, want ErrUnknownModel", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "unknown_model" {
		t.Fatalf("unknown model: got %v, want APIError{unknown_model}", err)
	}

	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	if _, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: -time.Second}); !errors.Is(err, clockwork.ErrInvalidRequest) {
		t.Fatalf("bad SLO: got %v, want ErrInvalidRequest", err)
	}
}

// TestStreamBackpressure: with a one-slot admission window and a slow
// clock, concurrent submissions beyond the window get the typed
// overloaded error on both transports, and HTTP carries Retry-After.
func TestStreamBackpressure(t *testing.T) {
	srv, client, sc := newTestStreamServer(t, clockwork.Config{},
		Options{Speed: 1, MaxInFlight: 1})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	// Occupy the single slot with a real-time (slow) request.
	first := make(chan error, 1)
	go func() {
		_, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: 30 * time.Second})
		first <- err
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(5 * time.Second)
	for serverInflight(srv) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the window")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if _, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stream overload: got %v, want ErrOverloaded", err)
	}
	_, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("http overload: got %v, want ErrOverloaded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("http overload: got %v, want 429 APIError", err)
	}

	if err := <-first; err != nil {
		t.Fatalf("first request: %v", err)
	}
}

// TestStreamConnDrop: killing the connection mid-request surfaces a
// typed transport error client-side and releases the server's
// in-flight accounting once the orphaned request completes.
func TestStreamConnDrop(t *testing.T) {
	// Real-time speed: the request lasts long enough (milliseconds of
	// wall time) for the drop to land while it is in flight, yet
	// completes quickly enough to watch the accounting release.
	srv, client, sc := newTestStreamServer(t, clockwork.Config{}, Options{Speed: 1})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	inferDone := make(chan error, 1)
	go func() {
		_, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: 30 * time.Second})
		inferDone <- err
	}()
	// Let the request get in flight, then cut every client connection.
	deadline := time.Now().Add(5 * time.Second)
	for serverInflight(srv) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never got in flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sc.Close()

	select {
	case err := <-inferDone:
		if !errors.Is(err, ErrStreamClosed) {
			t.Fatalf("dropped conn: got %v, want ErrStreamClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Infer never returned after connection drop")
	}
	// The orphaned request still runs to its outcome on the engine; its
	// completion callback must release the admission slot even though
	// the connection is gone.
	deadline = time.Now().Add(10 * time.Second)
	for serverInflight(srv) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight accounting stuck at %d after conn drop", serverInflight(srv))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// serverInflight reads the admission window occupancy (test-only).
func serverInflight(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflightN
}

// TestStreamPartialBatchReleasesAdmission: a connection that dies
// mid-coalesce — valid infer frames followed by a truncated one in the
// same segment — must release the admission slots of the never-injected
// requests, and the pooled batch must not leak its ghost entries into
// a later connection.
func TestStreamPartialBatchReleasesAdmission(t *testing.T) {
	srv, client, sc := newTestStreamServer(t, clockwork.Config{},
		Options{Speed: 1000, MaxInFlight: 4})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	// Hand-build one TCP segment: two complete infer frames plus a
	// truncated header, so the reader admits two requests and then
	// fails before injecting them.
	raw, err := net.Dial("tcp", streamAddrOf(t, srv))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var seg []byte
	for corr := uint64(1); corr <= 2; corr++ {
		// payload: corr, slo=1s, priority=0, maxbatch=0, model "m", tenant ""
		payload := []byte{byte(corr)}
		payload = appendVarint(payload, int64(time.Second))
		payload = append(payload, 0, 0) // priority, maxbatch varint(0)
		payload = append(payload, 1, 'm', 0)
		seg = append(seg, byte(len(payload)), 0, 0, 0, 1 /*TypeInfer*/)
		seg = append(seg, payload...)
	}
	seg = append(seg, 9, 0, 0, 0) // truncated header: missing type byte
	if _, err := raw.Write(seg); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw.Close()

	// The two admitted-but-never-injected slots must come back.
	deadline := time.Now().Add(5 * time.Second)
	for serverInflight(srv) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slots leaked: inflight=%d", serverInflight(srv))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A fresh request must still fit the window and get exactly its
	// own response (no ghost entries from the dead connection's batch).
	res, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
	if err != nil || !res.Success {
		t.Fatalf("post-leak Infer: %+v, %v", res, err)
	}
}

// streamAddrOf digs the stream listener address out of the server
// (test-only; newTestStreamServer registers exactly one).
func streamAddrOf(t *testing.T, s *Server) string {
	t.Helper()
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for ln := range s.streamLns {
		return ln.Addr().String()
	}
	t.Fatal("no stream listener")
	return ""
}

// appendVarint is a tiny zig-zag varint encoder for the hand-built
// frames above (mirrors encoding/binary.AppendVarint).
func appendVarint(b []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	for uv >= 0x80 {
		b = append(b, byte(uv)|0x80)
		uv >>= 7
	}
	return append(b, byte(uv))
}

// TestStreamGracefulDrain: Shutdown while stream requests are in
// flight lets them complete and flushes their responses before the
// sockets close.
func TestStreamGracefulDrain(t *testing.T) {
	srv, client, sc := newTestStreamServer(t, clockwork.Config{}, Options{Speed: 1})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	const n = 8
	var wg sync.WaitGroup
	results := make([]clockwork.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sc.Infer(ctx, clockwork.Request{Model: "m", SLO: 2 * time.Second})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("in-flight request %d broken by drain: %v", i, errs[i])
		}
		if !results[i].Success {
			t.Fatalf("in-flight request %d failed: %+v", i, results[i])
		}
	}
	// Post-drain submissions are refused (draining error frame or
	// closed connection, depending on timing).
	if _, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err == nil {
		t.Fatal("Infer after Shutdown should fail")
	}
}

// TestStreamEndToEndLoad is the stream transport's integrity
// acceptance run: a closed-loop load generation over the binary wire
// completing e2eRequests requests with zero lost and zero duplicated
// responses.
func TestStreamEndToEndLoad(t *testing.T) {
	n := e2eRequests
	if testing.Short() {
		n = 5_000
	}
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 2, GPUsPerWorker: 2}, Options{Speed: 2000})
	ctx := context.Background()
	if _, err := client.RegisterCopies(ctx, "res", "resnet50_v1b", 4); err != nil {
		t.Fatalf("RegisterCopies: %v", err)
	}

	rep, err := RunLoad(ctx, LoadConfig{
		Transport:   sc,
		SLO:         time.Second,
		Concurrency: 64,
		Duration:    10 * time.Minute, // the request budget terminates the run
		MaxRequests: uint64(n),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Sent != uint64(n) {
		t.Fatalf("sent %d requests, want %d", rep.Sent, n)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
	if lost := rep.Sent - rep.Completed - rep.Errors - rep.Shed; lost != 0 {
		t.Fatalf("%d responses lost", lost)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicated responses", rep.Duplicates)
	}
	if rep.Goodput <= 0 || rep.WithinSLO == 0 {
		t.Fatalf("no goodput: %+v", rep)
	}
}

// TestStreamBatchedLoad drives the pipelined SubmitBatch path through
// RunLoad and checks the same integrity invariants.
func TestStreamBatchedLoad(t *testing.T) {
	n := 20_000
	if testing.Short() {
		n = 2_000
	}
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 2, GPUsPerWorker: 2}, Options{Speed: 2000})
	ctx := context.Background()
	if _, err := client.RegisterCopies(ctx, "res", "resnet50_v1b", 4); err != nil {
		t.Fatalf("RegisterCopies: %v", err)
	}
	rep, err := RunLoad(ctx, LoadConfig{
		Transport:   sc,
		Batch:       32,
		SLO:         time.Second,
		Concurrency: 8,
		Duration:    10 * time.Minute,
		MaxRequests: uint64(n),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Sent != uint64(n) {
		t.Fatalf("sent %d requests, want %d", rep.Sent, n)
	}
	if lost := rep.Sent - rep.Completed - rep.Errors - rep.Shed; lost != 0 || rep.Duplicates != 0 {
		t.Fatalf("integrity: lost=%d dup=%d", lost, rep.Duplicates)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
}
