package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"clockwork"
)

// Client is the typed Go client of a clockworkd server: it mirrors the
// in-process Request/Result API over HTTP, so code written against
// System.SubmitRequest ports to the network with a connection string.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at addr ("host:port" or a
// full "http://…" base URL). httpClient may be nil for a default tuned
// for many concurrent loopback connections.
func NewClient(addr string, httpClient *http.Client) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if httpClient == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 512
		httpClient = &http.Client{Transport: tr}
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: httpClient}
}

// APIError is a non-2xx server response. Unwrap yields the matching
// typed clockwork error (e.g. clockwork.ErrUnknownModel), so
// errors.Is works identically against the in-process and the remote
// API.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Unwrap maps the wire code back onto the typed error taxonomy —
// clockwork's errors plus the serving-plane ones (ErrOverloaded,
// ErrDraining). Both transports produce APIError, so errors.Is works
// the same whichever front door the request took.
func (e *APIError) Unwrap() error { return codeToErr(e.Code) }

// do issues one JSON round trip. out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) != nil || e.Error == "" {
			e = errorResponse{Error: strings.TrimSpace(string(msg)), Code: "internal"}
		}
		return &APIError{Status: resp.StatusCode, Code: e.Code, Message: e.Error}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Infer submits one inference and blocks until its outcome returns.
// req.OnResult is ignored (completion is the HTTP response itself).
func (c *Client) Infer(ctx context.Context, req clockwork.Request) (clockwork.Result, error) {
	var resp InferResponse
	err := c.do(ctx, http.MethodPost, "/v1/infer", InferRequest{
		Model:        req.Model,
		SLO:          req.SLO,
		Priority:     req.Priority,
		Tenant:       req.Tenant,
		MaxBatchSize: req.MaxBatchSize,
	}, &resp)
	if err != nil {
		return clockwork.Result{}, err
	}
	return resp.Result(), nil
}

// RegisterModel registers one instance of a zoo catalogue model.
func (c *Client) RegisterModel(ctx context.Context, instance, zoo string) error {
	return c.do(ctx, http.MethodPost, "/v1/models",
		RegisterRequest{Instance: instance, Zoo: zoo}, nil)
}

// RegisterCopies registers n instances named "<base>#0" … "<base>#n-1"
// and returns their names.
func (c *Client) RegisterCopies(ctx context.Context, base, zoo string, n int) ([]string, error) {
	var resp RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/models",
		RegisterRequest{Instance: base, Zoo: zoo, Copies: n}, &resp)
	return resp.Instances, err
}

// Models lists the registered instance names in registration order.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	var resp ModelsResponse
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &resp)
	return resp.Models, err
}

// Stats returns the serving-plane summary.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// AddWorker adds one worker with the server's standard geometry and
// returns its ID.
func (c *Client) AddWorker(ctx context.Context) (int, error) {
	var resp WorkerResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/workers", nil, &resp)
	return resp.ID, err
}

// DrainWorker drains worker id.
func (c *Client) DrainWorker(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodPost, "/v1/admin/workers/drain", WorkerRequest{ID: id}, nil)
}

// FailWorker abruptly fails worker id.
func (c *Client) FailWorker(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodPost, "/v1/admin/workers/fail", WorkerRequest{ID: id}, nil)
}

// Rebalance runs one cross-shard rebalance pass and returns the number
// of models migrated.
func (c *Client) Rebalance(ctx context.Context) (int, error) {
	var resp RebalanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/rebalance", nil, &resp)
	return resp.Migrated, err
}

// ShardStats returns per-shard outcome counters and the migration
// count.
func (c *Client) ShardStats(ctx context.Context) (ShardStatsResponse, error) {
	var resp ShardStatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/admin/shards", nil, &resp)
	return resp, err
}

// Health probes /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health %s", resp.Status)
	}
	return nil
}

// WaitReady polls /healthz until the server answers or ctx expires —
// the standard "daemon just forked" startup gate.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		if err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}
