package serve

import (
	"net"
	"sync"
	"time"

	"clockwork"
	"clockwork/serve/stream"
)

// The stream transport: the serving plane's fast path. One TCP
// connection multiplexes many in-flight requests, correlated by a
// client-assigned ID; the reader coalesces every frame readable in one
// scheduling quantum into a single engine injection (amortizing the
// engine wakeup the way the paper's controller amortizes batched GPU
// work); completions fan back out through a per-connection writer
// goroutine that encodes and flushes whole queues at a time.

// maxStreamBatch caps how many infer frames one engine injection may
// carry, bounding the engine-side work per driver turn.
const maxStreamBatch = 256

// ServeStream accepts stream-transport connections on ln until
// Shutdown, serving the binary framing protocol of package
// serve/stream as the fast-path alternative to the HTTP front door.
// It returns nil after a clean Shutdown.
func (s *Server) ServeStream(ln net.Listener) error {
	s.streamMu.Lock()
	if s.isDraining() {
		s.streamMu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.streamLns[ln] = struct{}{}
	s.streamMu.Unlock()
	defer func() {
		s.streamMu.Lock()
		delete(s.streamLns, ln)
		s.streamMu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil // listener closed by Shutdown
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true) // frames are already write-coalesced
		}
		go s.serveStreamConn(c)
	}
}

// streamInfer is one decoded, admitted inference awaiting injection.
// shard is the engine it will be injected on — the model's owner per
// the routing hint on a multi-engine system, always 0 otherwise.
type streamInfer struct {
	corr  uint64
	shard int
	req   clockwork.Request
}

// batchPool recycles the injection batches; ownership passes from the
// reader goroutine to the injected closure, which returns the slice
// after submitting.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]streamInfer, 0, maxStreamBatch)
		return &b
	},
}

// serveStreamConn runs one connection: a reader loop on this
// goroutine, a writer goroutine for responses.
func (s *Server) serveStreamConn(c net.Conn) {
	sc := newStreamConn(c)
	if s.rec != nil {
		sc.barrier = s.rec.Flush
	}
	s.streamMu.Lock()
	if s.isDraining() {
		s.streamMu.Unlock()
		c.Close()
		return
	}
	s.streamConns[sc] = struct{}{}
	s.streamMu.Unlock()
	defer func() {
		s.streamMu.Lock()
		delete(s.streamConns, sc)
		s.streamMu.Unlock()
	}()

	go sc.writeLoop()
	defer sc.close()

	dec := stream.NewDecoder(c)
	batch := batchPool.Get().(*[]streamInfer)
	*batch = (*batch)[:0]
	// The reader can exit mid-coalesce (disconnect, malformed frame)
	// with requests admitted but not yet injected: their admission
	// slots must be released — and the batch emptied — before the
	// slice returns to the pool, or the slots leak and a later
	// connection would inject this connection's ghost requests.
	defer func() {
		for range *batch {
			s.release()
		}
		*batch = (*batch)[:0]
		batchPool.Put(batch)
	}()
	for {
		typ, p, err := dec.Next()
		if err != nil {
			return // disconnect or protocol violation: drop the connection
		}
		// Coalesce: pull every frame already readable — they arrived
		// within the same scheduling quantum — into one injection.
		for {
			if !s.streamFrame(sc, dec, typ, p, batch) {
				return
			}
			if dec.Buffered() == 0 || len(*batch) >= maxStreamBatch {
				break
			}
			typ, p, err = dec.Next()
			if err != nil {
				return
			}
		}
		if len(*batch) > 0 {
			s.injectBatch(sc, batch)
			batch = batchPool.Get().(*[]streamInfer)
			*batch = (*batch)[:0]
		}
	}
}

// streamFrame handles one decoded frame on the reader goroutine:
// infers are admitted into the pending batch (or refused with an error
// frame), control frames are answered via their own injections. A
// false return drops the connection (protocol violation).
func (s *Server) streamFrame(sc *streamConn, dec *stream.Decoder, typ uint8, p []byte, batch *[]streamInfer) bool {
	switch typ {
	case stream.TypeInfer:
		var f stream.InferFrame
		if dec.DecodeInfer(p, &f) != nil {
			return false
		}
		if err := s.admit(); err != nil {
			sc.sendError(f.Corr, errToWire(err), err.Error())
			return true
		}
		*batch = append(*batch, streamInfer{
			corr:  f.Corr,
			shard: s.ownerShard(f.Model),
			req: clockwork.Request{
				Model:        f.Model,
				SLO:          time.Duration(f.SLO),
				Priority:     int(f.Priority),
				Tenant:       f.Tenant,
				MaxBatchSize: int(f.MaxBatch),
			},
		})
		return true
	case stream.TypeModels:
		corr, err := stream.DecodeCorr(p)
		if err != nil {
			return false
		}
		// A refused injection (driver stopped) must still answer the
		// frame, or the client's correlation waits forever.
		s.live.InjectOrAbortOn(0, func() {
			s.recNoop()
			m := outFramePool.Get().(*outFrame)
			m.typ = stream.TypeModelList
			m.corr = corr
			m.models = append(m.models[:0], s.sys.Models()...)
			sc.send(m)
		}, func() {
			sc.sendError(corr, errToWire(ErrDraining), "live driver stopped")
		})
		return true
	default:
		return false
	}
}

// injectBatch hands the whole batch to its engine as ONE injected
// closure: however many requests the reader coalesced, the engine is
// woken once and the driver pays one turn. On a multi-engine system the
// batch is first partitioned by owner shard (each sub-batch wakes only
// its own engine); the common case — every coalesced frame targeting
// the same shard — stays a single injection with no re-slicing.
func (s *Server) injectBatch(sc *streamConn, batch *[]streamInfer) {
	b := *batch
	mixed := false
	for i := 1; i < len(b); i++ {
		if b[i].shard != b[0].shard {
			mixed = true
			break
		}
	}
	if !mixed {
		s.injectBatchOn(b[0].shard, sc, batch)
		return
	}
	parts := make(map[int]*[]streamInfer)
	for i := range b {
		p := parts[b[i].shard]
		if p == nil {
			p = batchPool.Get().(*[]streamInfer)
			*p = (*p)[:0]
			parts[b[i].shard] = p
		}
		*p = append(*p, b[i])
	}
	*batch = (*batch)[:0]
	batchPool.Put(batch)
	for shard, p := range parts {
		s.injectBatchOn(shard, sc, p)
	}
}

// streamSink is one in-flight request's completion state on the stream
// path: a pooled clockwork.ResultSink that replaces the per-request
// OnResult closure (and the discarded client Handle) of the old
// submission form. OnResult runs exactly once on the engine turn, so the
// sink can return itself to the pool there.
type streamSink struct {
	s     *Server
	sc    *streamConn
	corr  uint64 // client correlation ID
	jcorr uint64 // journal correlation (0 when not recording)
}

var streamSinkPool = sync.Pool{New: func() any { return new(streamSink) }}

// OnResult implements clockwork.ResultSink: queue the result frame,
// release the admission slot, recycle the sink.
func (k *streamSink) OnResult(res clockwork.Result) {
	s, sc, corr, jcorr := k.s, k.sc, k.corr, k.jcorr
	*k = streamSink{}
	streamSinkPool.Put(k)
	if s.rec != nil {
		// Buffer the ack before the result frame can be queued toward
		// the client. The group-commit flush happens on whichever
		// goroutine externalizes the frame: the writer loop before its
		// socket write, or this engine turn before sendInline below.
		s.rec.Ack(jcorr, res)
	}
	m := outFramePool.Get().(*outFrame)
	m.typ = stream.TypeResult
	m.result = stream.ResultFrame{
		Corr:      corr,
		RequestID: res.RequestID,
		Latency:   int64(res.Latency),
		Batch:     uint64(res.Batch),
		Reason:    uint8(res.Reason),
		Success:   res.Success,
		ColdStart: res.ColdStart,
	}
	// At low occupancy, skip the writer-goroutine handoff and write from
	// the engine turn itself: one context switch fewer on the latency
	// path, while bursts (high occupancy) still coalesce through the
	// writer.
	if s.inflightLow() {
		// Barrier before the engine-turn socket write; an inline miss
		// falls back to the queue, where the writer loop re-barriers
		// before its own write.
		if s.rec != nil {
			s.rec.Flush()
		}
		if sc.sendInline(m) {
			s.release()
			return
		}
	}
	sc.send(m)
	s.release()
}

// injectBatchOn injects one single-shard batch. Each request's
// completion sink queues a result frame on the connection writer and
// releases its admission slot — the slot is held until the outcome
// exists, so the in-flight window means what it says even if the
// connection dies first. A stopped driver runs the abort path instead:
// every admitted item is answered with a draining error frame and its
// slot released, so Inject-after-Stop can neither strand slots (a drain
// that never finishes) nor leave client correlations hanging.
func (s *Server) injectBatchOn(shard int, sc *streamConn, batch *[]streamInfer) {
	s.live.InjectOrAbortOn(shard, func() {
		for i := range *batch {
			it := &(*batch)[i]
			// One journal record per request of the coalesced batch, all
			// stamped with this closure's engine step — replay regroups
			// them into one injection by that shared stamp. The records
			// buffer until the Commit below: one write(2) per batch.
			var jcorr uint64
			if s.rec != nil {
				jcorr = s.rec.Infer(shard, it.req.Model, it.req.SLO, it.req.Priority, it.req.Tenant, it.req.MaxBatchSize)
			}
			k := streamSinkPool.Get().(*streamSink)
			k.s, k.sc, k.corr, k.jcorr = s, sc, it.corr, jcorr
			if err := s.sys.SubmitRequestSink(shard, it.req, k); err != nil {
				*k = streamSink{}
				streamSinkPool.Put(k)
				sc.sendError(it.corr, errToWire(err), err.Error())
				s.release()
			}
		}
		if s.rec != nil {
			s.rec.Commit()
		}
		*batch = (*batch)[:0]
		batchPool.Put(batch)
	}, func() {
		for i := range *batch {
			sc.sendError((*batch)[i].corr, errToWire(ErrDraining), "live driver stopped")
			s.release()
		}
		*batch = (*batch)[:0]
		batchPool.Put(batch)
	})
}

// ---- per-connection writer ----

// outFrame is one queued server→client frame, pooled so the
// steady-state response path reuses memory.
type outFrame struct {
	typ    uint8
	result stream.ResultFrame
	errf   stream.ErrorFrame
	corr   uint64   // TypeModelList correlation
	models []string // TypeModelList payload
}

var outFramePool = sync.Pool{New: func() any { return new(outFrame) }}

// streamConn is the server side of one stream connection. send may be
// called from any goroutine (engine callbacks, the reader); a single
// writer goroutine drains the queue, encoding and flushing whole
// batches — write coalescing falls out of taking the queue wholesale.
type streamConn struct {
	c   net.Conn
	enc *stream.Encoder

	// iomu serialises actual socket writes: the writer goroutine's
	// batches and the low-occupancy inline fast path.
	iomu sync.Mutex

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*outFrame
	spare  []*outFrame // double buffer, swapped with queue each wakeup
	closed bool        // no further sends; writer exits once drained

	// barrier, when set, runs before every socket write the writer loop
	// makes: the journal's group-commit flush, so acks buffered by the
	// engine reach the kernel before their result frames reach the wire.
	barrier func()

	writerDone chan struct{}
}

func newStreamConn(c net.Conn) *streamConn {
	sc := &streamConn{
		c:          c,
		enc:        stream.NewEncoder(c),
		writerDone: make(chan struct{}),
	}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// send queues one frame for the writer. After close/finish the frame
// is dropped (the peer is gone or going); the pool gets it back either
// way.
func (sc *streamConn) send(m *outFrame) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		outFramePool.Put(m)
		return
	}
	sc.queue = append(sc.queue, m)
	sc.cond.Signal()
	sc.mu.Unlock()
}

// sendInline attempts to encode and flush m directly on the calling
// goroutine (the engine turn), bypassing the writer handoff. It only
// proceeds when the writer is idle and the queue empty, preserving
// frame order; with the write deadline below, a jammed peer can stall
// the engine at most briefly, once — the failed write closes the
// connection. Reports whether m was consumed.
func (sc *streamConn) sendInline(m *outFrame) bool {
	if !sc.iomu.TryLock() {
		return false
	}
	sc.mu.Lock()
	ok := !sc.closed && len(sc.queue) == 0
	sc.mu.Unlock()
	if !ok {
		sc.iomu.Unlock()
		return false
	}
	_ = sc.c.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
	err := sc.enc.Result(&m.result)
	if err == nil {
		err = sc.enc.Flush()
	}
	_ = sc.c.SetWriteDeadline(time.Time{})
	sc.iomu.Unlock()
	outFramePool.Put(m)
	if err != nil {
		sc.close()
	}
	return true
}

func (sc *streamConn) sendError(corr uint64, code uint8, msg string) {
	m := outFramePool.Get().(*outFrame)
	m.typ = stream.TypeError
	m.errf = stream.ErrorFrame{Corr: corr, Code: code, Message: msg}
	sc.send(m)
}

// writeLoop drains the queue until the connection is closed AND the
// queue is empty, encoding every queued frame and flushing once per
// wakeup. It owns the socket's write side and closes the socket on
// exit, which also kicks the reader goroutine out of its blocking
// read.
func (sc *streamConn) writeLoop() {
	defer close(sc.writerDone)
	defer sc.c.Close()
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.closed {
			sc.cond.Wait()
		}
		batch := sc.queue
		sc.queue = sc.spare[:0]
		sc.spare = batch
		done := sc.closed && len(batch) == 0
		sc.mu.Unlock()
		if done {
			return
		}
		if sc.barrier != nil {
			sc.barrier()
		}
		err := sc.writeBatch(batch)
		for i := range batch {
			outFramePool.Put(batch[i])
			batch[i] = nil
		}
		if err != nil {
			sc.close() // peer gone; stop accepting sends, drop the rest
			return
		}
	}
}

func (sc *streamConn) writeBatch(batch []*outFrame) error {
	sc.iomu.Lock()
	defer sc.iomu.Unlock()
	for _, m := range batch {
		var err error
		switch m.typ {
		case stream.TypeResult:
			err = sc.enc.Result(&m.result)
		case stream.TypeError:
			err = sc.enc.Error(&m.errf)
		case stream.TypeModelList:
			err = sc.enc.ModelList(m.corr, m.models)
		}
		if err != nil {
			return err
		}
	}
	return sc.enc.Flush()
}

// close marks the connection dead: sends become drops, and the writer
// exits once its current queue is drained (then closes the socket).
// Idempotent, any goroutine.
func (sc *streamConn) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.cond.Signal()
	sc.mu.Unlock()
}

// finish is close plus waiting for the writer to flush — the graceful
// variant Shutdown uses after the drain, so every queued response
// reaches the wire before the socket closes. A peer that stops reading
// cannot stall shutdown past the grace window: the socket is then
// closed under the writer, unblocking it. (Shutdown additionally
// bounds all finishes with its ctx via forceClose.)
func (sc *streamConn) finish() {
	sc.close()
	select {
	case <-sc.writerDone:
	case <-time.After(3 * time.Second):
		sc.c.Close()
		<-sc.writerDone
	}
}

// forceClose tears the socket down immediately, unblocking a writer
// stalled on a peer that stopped reading. Used when the drain deadline
// expires.
func (sc *streamConn) forceClose() {
	sc.close()
	sc.c.Close()
}
