package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"clockwork"
	"clockwork/internal/autoscale"
	"clockwork/journal"
	"clockwork/trace"
)

// Options configures a Server.
type Options struct {
	// Speed is the virtual-vs-wall clock multiplier handed to
	// System.StartLive (<= 0 means 1.0: real time).
	Speed float64
	// MaxInFlight, if > 0, bounds the number of inference requests
	// admitted but not yet answered, across every transport (HTTP and
	// stream share one window). Beyond it the HTTP transport answers
	// 429 with Retry-After and the stream transport answers a typed
	// overloaded error frame — well-behaved clients shed load before
	// the engine's admission control has to cancel. 0 means unbounded.
	MaxInFlight int
	// Journal, if non-nil, records every externally-sourced injection
	// (submissions, registrations, worker ops, and read scrapes as
	// no-op records) plus an acknowledgement per completed request, for
	// crash recovery and deterministic replay. Single-engine systems
	// only — New panics on an EnginePerShard system with a journal, the
	// same boundary RunFor enforces. The server owns the recorder's
	// lifecycle: Shutdown closes it.
	Journal *journal.Recorder
	// Autoscale, if non-nil, closes the control loop: a periodic
	// engine-side policy (internal/autoscale) re-derives MaxInFlight
	// from observed SLO headroom and scales workers against sustained
	// demand, exposed at GET/POST /v1/admin/autoscaler. The initial
	// window is MaxInFlight clamped into the config's bounds
	// (MaxWindow when MaxInFlight is 0 — a closed loop needs a finite
	// window to move).
	Autoscale *AutoscaleConfig
	// Trace configures the flight recorder (per-request lifecycle
	// tracing; see clockwork/trace). A recorder is always attached —
	// attachment must precede engine start, so runtime enablement via
	// POST /v1/admin/trace works even when tracing starts disabled —
	// and nil Trace means "attached but disabled, default sample
	// rate". Tracing is a pure observer: request outcomes are
	// bit-identical at any sample rate.
	Trace *TraceConfig
}

// TraceConfig configures the flight recorder serve attaches to the
// system.
type TraceConfig struct {
	// Enabled starts recording immediately (otherwise the recorder
	// stays dormant until enabled through the admin plane).
	Enabled bool
	// SampleRate is the head-based sampling probability in [0, 1];
	// negative means the default (trace.DefaultSampleRate). SLO
	// violations are always retained regardless of the rate.
	SampleRate float64
	// RingSize and ViolationRingSize bound the per-shard retention
	// rings (0 = trace package defaults).
	RingSize          int
	ViolationRingSize int
}

// Server is the HTTP/JSON front end of a live System: it bridges
// concurrent connections onto the single-threaded engine through the
// Live driver (every engine-side call goes through Live.Do; every
// waiter blocks on Handle.Wait), so the engine keeps its lock-free
// single-goroutine discipline while the HTTP layer fans out.
//
// Endpoints:
//
//	POST /v1/infer          submit one inference, respond on completion
//	POST /v1/models         register a zoo model instance (or copies)
//	GET  /v1/models         list registered instances
//	GET  /v1/stats          Summary + serving-plane facts (JSON)
//	POST /v1/admin/workers        add a worker
//	POST /v1/admin/workers/drain  drain a worker
//	POST /v1/admin/workers/fail   fail a worker
//	POST /v1/admin/rebalance      run one rebalance pass
//	GET  /v1/admin/shards         per-shard outcome counters
//	GET  /v1/admin/autoscaler     closed-loop autoscaler status
//	POST /v1/admin/autoscaler     pause/resume the loop, force the window
//	GET  /v1/admin/trace          flight-recorder dump (Perfetto JSON)
//	POST /v1/admin/trace          enable/disable tracing, set sample rate
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz           liveness
type Server struct {
	sys  *clockwork.System
	live *clockwork.Live
	mux  *http.ServeMux
	// rec is the injection journal (nil when journaling is off). Every
	// injected closure that reaches the engine appends exactly one
	// record batch through it — mutations as typed records, reads as
	// no-ops — so a replay can re-consume engine steps one-for-one.
	rec *journal.Recorder
	// flight is the always-attached flight recorder (see Options.Trace);
	// never nil after New.
	flight *trace.Recorder

	started time.Time

	mu       sync.Mutex
	draining bool
	hsrv     *http.Server

	// inflight tracks infer requests between admission and response so
	// Shutdown can drain them before stopping the clock; inflightN is
	// the same count as a number, checked against maxInFlight (the
	// backpressure window — 0 means unbounded). Both transports admit
	// through the same window. stopCtx is cancelled immediately before
	// the driver stops, releasing any handler still blocked in
	// Handle.Wait (a drain that hit its deadline): once the clock
	// halts, those waits could otherwise never return.
	inflight    sync.WaitGroup
	inflightN   int
	maxInFlight int
	stopCtx     context.Context
	stopCancel  context.CancelFunc
	// pendingCalls tracks HTTP infer calls between admission and
	// release, so Shutdown can release the slots of requests whose
	// outcome will never come once the clock freezes — the bulk
	// replacement for a per-request context.AfterFunc watcher.
	pendingCalls map[*inferCall]struct{}

	// Stream-transport state: open listeners (closed first on
	// Shutdown, so no new connections arrive during the drain) and
	// live connections (finished after the drain, so every queued
	// response frame is flushed before the sockets close).
	streamMu    sync.Mutex
	streamLns   map[net.Listener]struct{}
	streamConns map[*streamConn]struct{}

	// Closed-loop autoscaler state (asc nil when Options.Autoscale was
	// not given). shedPeriod counts admission rejections since the last
	// control tick (the tick swaps it to zero — the Shed signal);
	// shedTotal is the lifetime count for /metrics. The asc* mirrors
	// publish the loop's last decision lock-free so status reads never
	// touch the engine.
	asc        *autoscale.Controller
	ascEnabled atomic.Bool
	shedPeriod atomic.Uint64
	shedTotal  atomic.Uint64
	ascWindow  atomic.Int64
	ascTicks   atomic.Uint64
	ascMoves   atomic.Uint64
	ascAdded   atomic.Uint64
	ascDrained atomic.Uint64
	ascMu      sync.Mutex
	ascReason  string
}

// New starts the system's wall-clock driver and returns a server ready
// to accept connections (via Serve/ListenAndServe, or by mounting
// Handler on an existing mux). The caller must not drive the system's
// virtual clock (RunFor etc.) while the server lives; register models
// either before New or through the /v1/models endpoint.
func New(sys *clockwork.System, opts Options) *Server {
	// The flight recorder must be attached before the engines start
	// pacing (attachment writes per-controller fields no lock guards);
	// attaching even when tracing is off lets the admin plane enable it
	// at runtime. A recorder the caller attached earlier is kept.
	flight := sys.FlightRecorder()
	if flight == nil {
		topts := trace.Options{SampleRate: -1}
		if tc := opts.Trace; tc != nil {
			topts.Enabled = tc.Enabled
			topts.SampleRate = tc.SampleRate
			topts.RingSize = tc.RingSize
			topts.ViolationRingSize = tc.ViolationRingSize
		}
		flight = trace.New(topts)
		sys.AttachFlightRecorder(flight)
	}
	s := &Server{
		sys:          sys,
		live:         sys.StartLive(opts.Speed),
		mux:          http.NewServeMux(),
		rec:          opts.Journal,
		flight:       flight,
		started:      time.Now(),
		maxInFlight:  opts.MaxInFlight,
		streamLns:    make(map[net.Listener]struct{}),
		streamConns:  make(map[*streamConn]struct{}),
		pendingCalls: make(map[*inferCall]struct{}),
	}
	if s.rec != nil && s.live.MultiEngine() {
		panic("serve: Options.Journal requires a single-engine system (journaling and replay are single-engine features)")
	}
	s.stopCtx, s.stopCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("POST /v1/models", s.handleRegister)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/admin/workers", s.handleAddWorker)
	s.mux.HandleFunc("POST /v1/admin/workers/drain", s.handleWorkerOp("drain", sys.DrainWorker))
	s.mux.HandleFunc("POST /v1/admin/workers/fail", s.handleWorkerOp("fail", sys.FailWorker))
	s.mux.HandleFunc("POST /v1/admin/rebalance", s.handleRebalance)
	s.mux.HandleFunc("GET /v1/admin/shards", s.handleShards)
	s.mux.HandleFunc("POST /v1/admin/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/admin/journal", s.handleJournal)
	s.mux.HandleFunc("GET /v1/admin/autoscaler", s.handleAutoscalerGet)
	s.mux.HandleFunc("POST /v1/admin/autoscaler", s.handleAutoscalerPost)
	s.mux.HandleFunc("GET /v1/admin/trace", s.handleTraceGet)
	s.mux.HandleFunc("POST /v1/admin/trace", s.handleTracePost)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if opts.Autoscale != nil {
		cfg := opts.Autoscale.WithDefaults()
		s.asc = autoscale.New(cfg)
		// The loop needs a finite window to move: unbounded starts at
		// the ceiling, out-of-bounds starts clamped.
		if s.maxInFlight <= 0 || s.maxInFlight > cfg.MaxWindow {
			s.maxInFlight = cfg.MaxWindow
		} else if s.maxInFlight < cfg.MinWindow {
			s.maxInFlight = cfg.MinWindow
		}
		s.ascWindow.Store(int64(s.maxInFlight))
		s.ascEnabled.Store(true)
		s.live.Every(cfg.Period, s.autoscaleTick)
	}
	if s.rec != nil {
		if every := s.rec.SnapshotEvery(); every > 0 {
			// Periodic snapshots ride the same engine entry every other
			// injection uses (Live.Do), so the capture sees quiescent
			// state and the marker is that injection's record.
			go func() {
				t := time.NewTicker(every)
				defer t.Stop()
				for {
					select {
					case <-s.stopCtx.Done():
						return
					case <-t.C:
						_ = s.live.Do(func() { _, _ = s.rec.Snapshot() })
					}
				}
			}()
		}
	}
	return s
}

// recNoop journals an injected read closure (stats, metrics, model
// lists): no engine-visible effect, but one engine step that replay
// must consume identically. Engine-side, like every record call.
func (s *Server) recNoop() {
	if s.rec != nil {
		s.rec.Noop()
	}
}

// Live returns the wall-clock driver, for callers that mix direct
// in-process access with HTTP serving.
func (s *Server) Live() *clockwork.Live { return s.live }

// Handler returns the server's HTTP handler, for mounting on an
// existing mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns nil after
// a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	hsrv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.hsrv = hsrv
	s.mu.Unlock()
	err := hsrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server: new infers are refused with 503, the
// HTTP listener stops accepting, every in-flight request runs to its
// outcome (the engine keeps ticking while they drain), and only then
// does the wall-clock driver stop. ctx bounds the drain; on expiry the
// driver is stopped anyway and Shutdown returns ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	hsrv := s.hsrv
	s.mu.Unlock()

	// Stop accepting stream connections before the drain: frames on
	// existing connections are refused (draining error frames), but no
	// new connections may join.
	s.streamMu.Lock()
	for ln := range s.streamLns {
		_ = ln.Close()
	}
	s.streamMu.Unlock()

	var err error
	if hsrv != nil {
		err = hsrv.Shutdown(ctx)
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	// The in-flight count is zero (or the deadline expired): every
	// outcome has been queued on its connection's writer. Finish the
	// stream connections now — each writer flushes its queue and closes
	// the socket — so no completed response is lost to the shutdown.
	// Flushes run in parallel and remain bounded by ctx: a peer that
	// stopped reading cannot stall the drain past the deadline (its
	// socket is force-closed, which unblocks the stalled writer).
	s.streamMu.Lock()
	conns := make([]*streamConn, 0, len(s.streamConns))
	for sc := range s.streamConns {
		conns = append(conns, sc)
	}
	s.streamMu.Unlock()
	var flushWG sync.WaitGroup
	for _, sc := range conns {
		flushWG.Add(1)
		go func(sc *streamConn) {
			defer flushWG.Done()
			sc.finish()
		}(sc)
	}
	flushed := make(chan struct{})
	go func() {
		flushWG.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
		for _, sc := range conns {
			sc.forceClose()
		}
		<-flushed
		if err == nil {
			err = ctx.Err()
		}
	}
	// Release any handler still blocked on its outcome (only possible
	// when the drain deadline expired) before freezing the clock, so no
	// goroutine is stranded waiting on an engine that will never tick —
	// and release those requests' admission slots, which their engine-
	// side completion will now never release.
	s.stopCancel()
	s.releasePendingCalls()
	s.live.Stop()
	// The engine goroutine is gone: no append can race the close. Flush
	// and fsync the journal tail so the drained state is durable.
	if s.rec != nil {
		if cerr := s.rec.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit registers one in-flight infer, refusing with ErrDraining once
// Shutdown has begun and with ErrOverloaded when the admission window
// (Options.MaxInFlight) is full. The checks and the WaitGroup
// increment share the mutex, so no increment can race the drain's
// Wait: after Shutdown sets draining, the in-flight count only
// decreases. Every successful admit must be paired with one release.
func (s *Server) admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.maxInFlight > 0 && s.inflightN >= s.maxInFlight {
		// A shed is the autoscaler's loudest signal: this request
		// missed its SLO as surely as a late one (Signals.Shed). The
		// flight recorder counts it too, as SLO-miss provenance — a
		// shed request never reaches the engine, so this is the only
		// place its loss can be attributed.
		s.shedPeriod.Add(1)
		s.shedTotal.Add(1)
		s.flight.RecordShed()
		return ErrOverloaded
	}
	s.inflightN++
	s.inflight.Add(1)
	return nil
}

// MaxInFlight returns the admission window currently in force (0 =
// unbounded). It moves at runtime when the autoscaler is on.
func (s *Server) MaxInFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxInFlight
}

// SetMaxInFlight re-derives the admission window at runtime. Requests
// already admitted keep their slots: shrinking below the current
// in-flight count admits nothing new until completions bring the count
// back under the window — no admitted request is ever evicted.
func (s *Server) SetMaxInFlight(n int) {
	s.mu.Lock()
	s.maxInFlight = n
	s.mu.Unlock()
}

// release undoes one admit, once the request's response has been
// written (HTTP) or queued on its connection's writer (stream).
func (s *Server) release() {
	s.mu.Lock()
	s.inflightN--
	s.mu.Unlock()
	s.inflight.Done()
}

// releaseCall is release plus deregistering the HTTP call from the
// shutdown bulk-release set, in the same critical section.
func (s *Server) releaseCall(c *inferCall) {
	s.mu.Lock()
	delete(s.pendingCalls, c)
	s.inflightN--
	s.mu.Unlock()
	s.inflight.Done()
}

// releasePendingCalls releases the admission slot of every HTTP infer
// call still awaiting its outcome — Shutdown's replacement for the
// per-request stopCtx watcher, run immediately before the clock
// freezes (those outcomes will never come). The per-call CAS absorbs a
// racing completion.
func (s *Server) releasePendingCalls() {
	s.mu.Lock()
	pending := make([]*inferCall, 0, len(s.pendingCalls))
	for c := range s.pendingCalls {
		pending = append(pending, c)
	}
	s.mu.Unlock()
	for _, c := range pending {
		c.rel()
	}
}

// inflightLow reports whether the server is near-idle — the gate for
// the stream transport's inline-write latency fast path (under burst,
// responses take the coalescing writer instead).
func (s *Server) inflightLow() bool {
	s.mu.Lock()
	n := s.inflightN
	s.mu.Unlock()
	return n <= 2
}

// ---- handlers ----

// inferCall is the pooled per-request state of the HTTP infer path: the
// decoded request, the response being built, the JSON decode buffer,
// the two engine-crossing channels, and closures prebuilt once per
// struct — so the steady-state handler borrows one object instead of
// allocating scratch, channels, and a closure per hook on every
// request. The struct is shared between the handler goroutine and the
// engine turn; a two-party refcount returns it to the pool when the
// last holder lets go (a handler abandoned by its client can return
// while the engine-side outcome is still on its way).
type inferCall struct {
	s    *Server
	req  InferRequest
	resp InferResponse
	body []byte

	shard int
	corr  uint64 // journal correlation (meaningful only when recording)

	// outc carries the submission outcome (accepted / refused /
	// driver stopped) from the injected closure back to the handler;
	// resc carries the engine-side result. Both are reusable
	// capacity-1 channels, drained on the struct's way back to the pool.
	outc chan submitOutcome
	resc chan clockwork.Result

	// relFlag makes the admission-slot release idempotent across its
	// three racers (outcome, early error path, shutdown's bulk
	// release); reset on acquire. It replaces the old per-request
	// sync.Once.
	relFlag atomic.Uint32
	// refs counts the parties still holding the struct: the handler,
	// plus the engine side between a successful submit and OnResult.
	refs atomic.Int32

	// Method-value closures built once per struct (pool New), handed to
	// InjectOrAbortOn without per-request allocs.
	runF, abortF func()
}

var inferCallPool = sync.Pool{New: func() any {
	c := &inferCall{
		body: make([]byte, 0, 512),
		outc: make(chan submitOutcome, 1),
		resc: make(chan clockwork.Result, 1),
	}
	c.runF, c.abortF = c.run, c.abort
	return c
}}

func acquireInferCall(s *Server) *inferCall {
	c := inferCallPool.Get().(*inferCall)
	c.s = s
	c.relFlag.Store(0)
	c.refs.Store(1)
	s.mu.Lock()
	s.pendingCalls[c] = struct{}{}
	s.mu.Unlock()
	return c
}

// unref drops one holder's reference; the last one out resets the
// struct and returns it to the pool.
func (c *inferCall) unref() {
	if c.refs.Add(-1) != 0 {
		return
	}
	// Drain tokens an abandoned wait left behind (client-gone path).
	select {
	case <-c.outc:
	default:
	}
	select {
	case <-c.resc:
	default:
	}
	c.s = nil
	c.req, c.resp = InferRequest{}, InferResponse{}
	c.body = c.body[:0]
	c.shard, c.corr = 0, 0
	inferCallPool.Put(c)
}

// rel releases the admission slot, exactly once per request; whichever
// of its racers (outcome, early error, shutdown's bulk release) fires
// first wins.
func (c *inferCall) rel() {
	if c.relFlag.CompareAndSwap(0, 1) {
		c.s.releaseCall(c)
	}
}

// run executes on the engine turn: journal the injection, submit
// through the fire-and-forget sink path (no Handle, no completion
// closure — this struct IS the sink), report the submission outcome
// back to the handler.
func (c *inferCall) run() {
	s := c.s
	if s.rec != nil {
		c.corr = s.rec.Infer(c.shard, c.req.Model, c.req.SLO, c.req.Priority, c.req.Tenant, c.req.MaxBatchSize)
	}
	c.refs.Add(1) // the engine side holds the struct until OnResult
	err := s.sys.SubmitRequestSink(c.shard, clockwork.Request{
		Model:        c.req.Model,
		SLO:          c.req.SLO,
		Priority:     c.req.Priority,
		Tenant:       c.req.Tenant,
		MaxBatchSize: c.req.MaxBatchSize,
	}, c)
	if err != nil {
		c.refs.Add(-1) // refused: no OnResult will come
	}
	if s.rec != nil {
		s.rec.Commit()
	}
	c.outc <- submitOutcome{err: err}
}

// abort is the InjectOrAbortOn refusal path (driver stopped).
func (c *inferCall) abort() {
	c.outc <- submitOutcome{stopped: true}
}

// OnResult implements clockwork.ResultSink — the engine-side
// completion. The outcome travels back through resc rather than
// Handle.Wait: the journal's ack record is appended here, strictly
// before the send, and the receiving handler flushes the journal before
// responding — so the ack reaches the kernel before the response can
// reach the wire, the no-acked-request-lost invariant.
func (c *inferCall) OnResult(res clockwork.Result) {
	s := c.s
	if s.rec != nil {
		s.rec.Ack(c.corr, res)
	}
	c.resc <- res
	c.rel()
	c.unref()
}

// ownerShard picks the engine shard to inject a submission on: the
// model's owner per the lock-free routing hint when the system runs one
// engine per shard, shard 0 otherwise. An unregistered model maps to
// shard 0, whose controller answers ErrUnknownModel.
func (s *Server) ownerShard(model string) int {
	if !s.live.MultiEngine() {
		return 0
	}
	if shard, ok := s.sys.OwnerShard(model); ok {
		return shard
	}
	return 0
}

// submitOutcome carries the engine-side submission outcome back to the
// handler goroutine.
type submitOutcome struct {
	err     error
	stopped bool
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if err := s.admit(); err != nil {
		status, code := errToCode(err)
		if errors.Is(err, ErrOverloaded) {
			// One second is the resolution Retry-After has; the window
			// usually reopens far sooner.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, code, err)
		return
	}
	// The admission slot is held until the request reaches its OUTCOME,
	// not until this handler returns: a handler abandoned by its client
	// leaves a request still occupying the engine, and the in-flight
	// window must keep counting it or MaxInFlight stops bounding
	// engine-side work (the whole point of admission). c.rel is
	// idempotent; whichever of these fires first wins:
	//   - the request's OnResult (the normal case, on the engine turn),
	//   - an early error path below (never submitted),
	//   - Shutdown's bulk release (the driver is freezing; the outcome
	//     will never come).
	c := acquireInferCall(s)
	defer c.unref()
	if !decodeJSONBuf(w, r, &c.req, &c.body) {
		c.rel()
		return
	}

	// Inject on the shard owning the model (shard 0 on a single-engine
	// system): a routed injection wakes one engine instead of
	// barrier-stopping all of them, and InjectOrAbortOn guarantees
	// exactly one of run/abort fires even across a racing Stop, so the
	// outcome channel always receives.
	c.shard = s.ownerShard(c.req.Model)
	s.live.InjectOrAbortOn(c.shard, c.runF, c.abortF)
	out := <-c.outc
	if out.stopped {
		c.rel()
		writeError(w, http.StatusServiceUnavailable, "stopped", clockwork.ErrLiveStopped)
		return
	}
	if out.err != nil {
		c.rel()
		writeAPIError(w, out.err)
		return
	}
	// Wait until completion, the client disconnecting, or the server
	// giving up its drain (stopCtx) — the last so no handler is left
	// waiting on a clock that stopped ticking.
	var res clockwork.Result
	var werr error
	select {
	case res = <-c.resc:
		// Group-commit barrier: the ack record buffered in OnResult must
		// be in the kernel before this handler puts the response on the
		// wire. One handler's flush covers every ack buffered since the
		// last barrier; the repeat calls are lock-and-return no-ops.
		if s.rec != nil {
			s.rec.Flush()
		}
	case <-r.Context().Done():
		werr = r.Context().Err()
	case <-s.stopCtx.Done():
		werr = s.stopCtx.Err()
	}
	if werr != nil {
		// Distinguish the two release causes: the server abandoning its
		// drain (stopCtx) vs. the client disconnecting. The request
		// itself still runs to its outcome inside the engine (if the
		// clock keeps ticking) — and its admission slot stays charged
		// until that outcome: nothing useful reaches a gone client, but
		// the engine-side work is still real.
		code := "client_gone"
		if s.stopCtx.Err() != nil && r.Context().Err() == nil {
			code = "draining"
		}
		writeError(w, http.StatusServiceUnavailable, code, werr)
		return
	}
	c.resp = InferResponse{
		RequestID:  res.RequestID,
		Model:      res.Model,
		Tenant:     res.Tenant,
		Success:    res.Success,
		Reason:     res.Reason.String(),
		ReasonCode: uint8(res.Reason),
		Latency:    res.Latency,
		Batch:      res.Batch,
		ColdStart:  res.ColdStart,
	}
	writeJSON(w, &c.resp)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Instance == "" || req.Zoo == "" {
		writeError(w, http.StatusBadRequest, "invalid_request",
			errors.New("instance and zoo are required"))
		return
	}
	var names []string
	var err error
	doErr := s.live.Do(func() {
		if s.rec != nil {
			// Recorded before the call: a registration that fails here
			// (duplicate name) fails identically on recovery and replay,
			// restoring the same registry either way.
			s.rec.Register(req.Instance, req.Zoo, req.Copies)
		}
		if req.Copies > 0 {
			names, err = s.sys.RegisterCopies(req.Instance, req.Zoo, req.Copies)
		} else {
			err = s.sys.RegisterModel(req.Instance, req.Zoo)
			names = []string{req.Instance}
		}
	})
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, RegisterResponse{Instances: names})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var models []string
	if doErr := s.live.Do(func() { s.recNoop(); models = s.sys.Models() }); doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, ModelsResponse{Models: models})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, doErr := s.snapshot()
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, st)
}

// fillStats populates st's engine-side fields. It must run on the
// engine goroutine (inside a live.Do closure); both /v1/stats and
// /metrics read through it so the two views cannot drift.
func (s *Server) fillStats(st *StatsResponse) {
	st.Summary = s.sys.Summary()
	st.VirtualNow = s.sys.Now()
	st.Workers = s.sys.Workers()
	st.Shards = s.sys.ShardCount()
	st.Models = s.sys.ModelCount()
}

// snapshot reads a consistent serving-plane summary on the engine
// goroutine.
func (s *Server) snapshot() (StatsResponse, error) {
	var st StatsResponse
	err := s.live.Do(func() { s.recNoop(); s.fillStats(&st) })
	st.Uptime = time.Since(s.started)
	st.Speed = s.live.Speed()
	return st, err
}

func (s *Server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var id int
	doFn := func() {
		if s.rec != nil {
			s.rec.AddWorker()
		}
		id = s.sys.AddWorker()
	}
	if doErr := s.live.Do(doFn); doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, WorkerResponse{ID: id, State: "active"})
}

func (s *Server) handleWorkerOp(kind string, op func(int) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req WorkerRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		var err error
		var state clockwork.WorkerState
		doErr := s.live.Do(func() {
			if s.rec != nil {
				switch kind {
				case "drain":
					s.rec.DrainWorker(req.ID)
				case "fail":
					s.rec.FailWorker(req.ID)
				}
			}
			if err = op(req.ID); err == nil {
				state, _ = s.sys.WorkerStateOf(req.ID)
			}
		})
		if doErr != nil {
			writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
			return
		}
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, WorkerResponse{ID: req.ID, State: state.String()})
	}
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var migrated int
	doFn := func() {
		if s.rec != nil {
			s.rec.Rebalance()
		}
		migrated = s.sys.Rebalance()
	}
	if doErr := s.live.Do(doFn); doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, RebalanceResponse{Migrated: migrated})
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	var resp ShardStatsResponse
	doErr := s.live.Do(func() {
		s.recNoop()
		n := s.sys.ShardCount()
		resp.Shards = make([]ShardStatsEntry, 0, n)
		for i := 0; i < n; i++ {
			st, err := s.sys.ShardStats(i)
			if err != nil {
				continue
			}
			resp.Shards = append(resp.Shards, ShardStatsEntry{Shard: i, ShardStats: st})
		}
		resp.Migrations = s.sys.Migrations()
	})
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, resp)
}

// handleSnapshot (POST /v1/admin/snapshot) takes an on-demand
// control-plane snapshot through the same engine entry the periodic
// ticker uses, and answers with where it landed.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, "no_journal", errors.New("journaling is not enabled (start with -journal)"))
		return
	}
	var info journal.SnapshotInfo
	var serr error
	doErr := s.live.Do(func() { info, serr = s.rec.Snapshot() })
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	if serr != nil {
		writeError(w, http.StatusInternalServerError, "snapshot_failed", serr)
		return
	}
	writeJSON(w, SnapshotResponse{
		Path:           info.Path,
		Seq:            info.Seq,
		Step:           info.Step,
		VirtualTime:    info.VT,
		Bytes:          info.Bytes,
		Models:         info.Models,
		Workers:        info.Workers,
		PrunedSegments: info.PrunedSegments,
	})
}

// handleJournal (GET /v1/admin/journal) reports journal health from the
// recorder's lock-free status mirrors — no engine call, no record, so
// scraping it does not perturb the replay stream.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, "no_journal", errors.New("journaling is not enabled (start with -journal)"))
		return
	}
	st := s.rec.Status()
	writeJSON(w, JournalStatusResponse{
		Dir:              st.Dir,
		Epoch:            st.Epoch,
		Segments:         st.Segments,
		Bytes:            st.Bytes,
		Records:          st.Records,
		Infers:           st.Infers,
		Acks:             st.Acks,
		Fsync:            st.Fsync.String(),
		UnsyncedBytes:    st.UnsyncedBytes,
		FsyncLag:         st.FsyncLag,
		Snapshots:        st.Snapshots,
		LastSnapshotPath: st.LastSnapshotPath,
		LastSnapshotSeq:  st.LastSnapshotSeq,
		LastSnapshotAge:  st.LastSnapshotAge,
		Failed:           st.Failed,
		Error:            st.Err,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// maxBodyBytes caps JSON request bodies (1MB — orders of magnitude
// above any legitimate request) so a hostile client cannot grow the
// daemon's memory with one enormous POST.
const maxBodyBytes = 1 << 20

// decodeJSON decodes a size-capped JSON body; on failure it writes the
// 400 and reports false. Handlers off the hot path use it directly;
// handleInfer goes through decodeJSONBuf with a pooled buffer.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	var body []byte
	return decodeJSONBuf(w, r, v, &body)
}

// decodeJSONBuf reads the body into *buf (reusing its capacity — the
// infer path hands a pooled slice, so steady-state decoding does not
// reallocate) and unmarshals it.
func decodeJSONBuf(w http.ResponseWriter, r *http.Request, v any, buf *[]byte) bool {
	b := (*buf)[:0]
	rd := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := rd.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*buf = b
			writeError(w, http.StatusBadRequest, "bad_json", err)
			return false
		}
	}
	*buf = b
	if err := json.Unmarshal(b, v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return false
	}
	return true
}

// ---- response plumbing ----

// jsonBufPool holds encode buffers so writeJSON marshals into reused
// memory instead of allocating per response.
var jsonBufPool = sync.Pool{
	New: func() any { return bytes.NewBuffer(make([]byte, 0, 512)) },
}

// writeJSON buffer-encodes v before touching the ResponseWriter, so an
// encode failure can still become a real 500 errorResponse instead of
// the silent empty 200 the old direct-encode path produced (by the time
// a streaming encoder fails, the 200 status line is already on the
// wire).
func writeJSON(w http.ResponseWriter, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := json.NewEncoder(buf).Encode(v)
	if err != nil {
		jsonBufPool.Put(buf)
		writeError(w, http.StatusInternalServerError, "encode_failed", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
	jsonBufPool.Put(buf)
}

func writeAPIError(w http.ResponseWriter, err error) {
	status, code := errToCode(err)
	writeError(w, status, code, err)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Code: code})
}
