package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestInferRoundTrip(t *testing.T) {
	frames := []InferFrame{
		{},
		{Corr: 1, SLO: 250_000_000, Model: "resnet50_v1b"},
		{Corr: 1<<64 - 1, SLO: -1, Priority: -42, MaxBatch: 16, Model: "m", Tenant: "t"},
		{Corr: 7, SLO: 1, Priority: 1 << 40, MaxBatch: -3, Model: "a/b#0", Tenant: "tenant-β"},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := range frames {
		if err := enc.Infer(&frames[i]); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	dec := NewDecoder(&buf)
	for i := range frames {
		typ, p, err := dec.Next()
		if err != nil || typ != TypeInfer {
			t.Fatalf("frame %d: type=%d err=%v", i, typ, err)
		}
		var got InferFrame
		if err := dec.DecodeInfer(p, &got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != frames[i] {
			t.Fatalf("frame %d: got %+v want %+v", i, got, frames[i])
		}
	}
	if _, _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestResultErrorModelsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	res := ResultFrame{Corr: 9, RequestID: 1234, Latency: 3_530_000, Batch: 4,
		Reason: 2, Success: true, ColdStart: true}
	errF := ErrorFrame{Corr: 10, Code: CodeUnknownModel, Message: "unknown model \"nope\""}
	models := []string{"resnet#0", "resnet#1", "densenet"}
	if err := enc.Result(&res); err != nil {
		t.Fatal(err)
	}
	if err := enc.Error(&errF); err != nil {
		t.Fatal(err)
	}
	if err := enc.Models(77); err != nil {
		t.Fatal(err)
	}
	if err := enc.ModelList(77, models); err != nil {
		t.Fatal(err)
	}
	if err := enc.ModelList(78, nil); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	typ, p, err := dec.Next()
	if err != nil || typ != TypeResult {
		t.Fatalf("result frame: type=%d err=%v", typ, err)
	}
	var gotRes ResultFrame
	if err := DecodeResult(p, &gotRes); err != nil || gotRes != res {
		t.Fatalf("result: got %+v (%v), want %+v", gotRes, err, res)
	}
	typ, p, err = dec.Next()
	if err != nil || typ != TypeError {
		t.Fatalf("error frame: type=%d err=%v", typ, err)
	}
	var gotErr ErrorFrame
	if err := DecodeError(p, &gotErr); err != nil || gotErr != errF {
		t.Fatalf("error: got %+v (%v), want %+v", gotErr, err, errF)
	}
	typ, p, err = dec.Next()
	if err != nil || typ != TypeModels {
		t.Fatalf("models frame: type=%d err=%v", typ, err)
	}
	if corr, err := DecodeCorr(p); err != nil || corr != 77 {
		t.Fatalf("models corr: %d, %v", corr, err)
	}
	typ, p, err = dec.Next()
	if err != nil || typ != TypeModelList {
		t.Fatalf("modellist frame: type=%d err=%v", typ, err)
	}
	var gotList ModelListFrame
	if err := dec.DecodeModelList(p, &gotList); err != nil || gotList.Corr != 77 {
		t.Fatalf("modellist: %+v, %v", gotList, err)
	}
	if len(gotList.Models) != len(models) {
		t.Fatalf("modellist: got %v want %v", gotList.Models, models)
	}
	for i := range models {
		if gotList.Models[i] != models[i] {
			t.Fatalf("modellist[%d]: got %q want %q", i, gotList.Models[i], models[i])
		}
	}
	typ, p, err = dec.Next()
	if err != nil || typ != TypeModelList {
		t.Fatalf("empty modellist frame: type=%d err=%v", typ, err)
	}
	if err := dec.DecodeModelList(p, &gotList); err != nil || gotList.Corr != 78 || len(gotList.Models) != 0 {
		t.Fatalf("empty modellist: %+v, %v", gotList, err)
	}
}

// TestCodecZeroAlloc is the steady-state allocation contract: once the
// decoder has interned the model/tenant names and the buffers are
// warm, an infer+result round trip allocates nothing.
func TestCodecZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)
	inf := InferFrame{Corr: 1, SLO: 250_000_000, MaxBatch: 8, Model: "resnet50_v1b", Tenant: "acme"}
	res := ResultFrame{Corr: 1, RequestID: 42, Latency: 3_530_000, Batch: 4, Success: true}
	roundTrip := func() {
		inf.Corr++
		res.Corr++
		if err := enc.Infer(&inf); err != nil {
			t.Fatal(err)
		}
		if err := enc.Result(&res); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			typ, p, err := dec.Next()
			if err != nil {
				t.Fatal(err)
			}
			switch typ {
			case TypeInfer:
				var f InferFrame
				if err := dec.DecodeInfer(p, &f); err != nil || f.Model != inf.Model {
					t.Fatalf("decode infer: %+v, %v", f, err)
				}
			case TypeResult:
				var f ResultFrame
				if err := DecodeResult(p, &f); err != nil || f.RequestID != res.RequestID {
					t.Fatalf("decode result: %+v, %v", f, err)
				}
			}
		}
	}
	roundTrip() // warm buffers and intern table
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs != 0 {
		t.Errorf("steady-state round trip allocates %.1f/op, want 0", allocs)
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	// Oversized header.
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	hdr[4] = TypeInfer
	dec := NewDecoder(bytes.NewReader(hdr[:]))
	if _, _, err := dec.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}

	// Truncated payload.
	binary.LittleEndian.PutUint32(hdr[:4], 16)
	dec = NewDecoder(bytes.NewReader(append(hdr[:], 1, 2, 3)))
	if _, _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want ErrUnexpectedEOF", err)
	}

	// Truncated header.
	dec = NewDecoder(bytes.NewReader(hdr[:3]))
	if _, _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v, want ErrUnexpectedEOF", err)
	}

	// Malformed payloads: every decode must fail, never panic.
	bad := [][]byte{
		{},              // empty: missing fields
		{0x80},          // truncated uvarint
		{1, 2},          // short for any type
		{1, 1, 1, 1, 9}, // infer: string length beyond payload
	}
	d := NewDecoder(bytes.NewReader(nil))
	for _, p := range bad {
		var inf InferFrame
		if err := d.DecodeInfer(p, &inf); err == nil {
			t.Errorf("DecodeInfer(%v) accepted", p)
		}
		var res ResultFrame
		if err := DecodeResult(p, &res); err == nil && len(p) < 6 {
			t.Errorf("DecodeResult(%v) accepted", p)
		}
	}
	// Trailing junk after a valid payload.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Infer(&InferFrame{Corr: 1, Model: "m"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	_, p, err := NewDecoder(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	var inf InferFrame
	if err := d.DecodeInfer(append(append([]byte{}, p...), 0), &inf); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("trailing junk: %v, want ErrMalformedFrame", err)
	}

	// ModelList with an absurd count must be rejected before allocating.
	count := binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1<<40)
	var ml ModelListFrame
	if err := d.DecodeModelList(count, &ml); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("huge model count: %v, want ErrMalformedFrame", err)
	}
}
