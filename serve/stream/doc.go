// Package stream is the binary wire codec of the clockwork serving
// plane's fast path: a length-prefixed framing protocol over plain TCP
// with connection multiplexing (many in-flight requests per
// connection, correlated by a client-assigned correlation ID).
//
// The package is pure codec — it knows nothing about engines, HTTP or
// the clockwork types. Package serve builds the transport on top of
// it: serve.Server.ServeStream reads frames off each connection and
// injects batched submissions onto the engine; serve.StreamClient
// speaks the same frames from the client side.
//
// # Frame layout
//
// Every frame is a fixed 5-byte header followed by a varint-encoded
// payload:
//
//	frame   = length(uint32 LE) type(uint8) payload
//	length  = len(payload)                  // excludes the 5-byte header
//
// Payloads by frame type (uvarint/varint are encoding/binary's
// unsigned and zig-zag signed varints; str = len(uvarint) bytes):
//
//	TypeInfer     = corr(uvarint) slo(varint) priority(varint)
//	                maxbatch(varint) model(str) tenant(str)
//	TypeResult    = corr(uvarint) reqid(uvarint) flags(uint8)
//	                reason(uint8) latency(varint) batch(uvarint)
//	TypeError     = corr(uvarint) code(uint8) msg(str)
//	TypeModels    = corr(uvarint)
//	TypeModelList = corr(uvarint) count(uvarint) str...
//
// Result flags: bit 0 = success, bit 1 = cold start.
//
// Encoder and Decoder reuse their internal buffers across frames and
// the Decoder interns short strings, so a steady-state
// encode/decode round trip allocates nothing (asserted by
// TestCodecZeroAlloc; the round trip itself is fuzzed by
// FuzzDecodeFrame and FuzzInferRoundTrip).
package stream
