package stream

import (
	"bytes"
	"io"
	"testing"
)

// encodeSeeds builds one byte stream containing every frame type —
// the canonical seed for the decoder fuzzer (also committed under
// testdata/fuzz/FuzzDecodeFrame).
func encodeSeeds(t testing.TB) []byte {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Infer(&InferFrame{Corr: 1, SLO: 250_000_000, Priority: -1, MaxBatch: 8,
		Model: "resnet50_v1b", Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Result(&ResultFrame{Corr: 1, RequestID: 42, Latency: 3_530_000,
		Batch: 4, Reason: 0, Success: true, ColdStart: true}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Error(&ErrorFrame{Corr: 2, Code: CodeUnknownModel, Message: "unknown model"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Models(3); err != nil {
		t.Fatal(err)
	}
	if err := enc.ModelList(3, []string{"resnet50_v1b", "densenet161"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and every frame that decodes cleanly must survive an
// encode→decode round trip bit-identically.
func FuzzDecodeFrame(f *testing.F) {
	seed := encodeSeeds(f)
	f.Add(seed)
	f.Add(seed[:7])                              // truncated mid-frame
	f.Add([]byte{})                              // empty stream
	f.Add([]byte{0, 0, 0, 0, 0})                 // zero-length unknown-type frame
	f.Add([]byte{255, 255, 255, 255, TypeInfer}) // oversized header
	f.Add(append(append([]byte{}, seed...), 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for {
			typ, p, err := dec.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge {
					t.Fatalf("Next: unexpected error class %v", err)
				}
				return
			}
			switch typ {
			case TypeInfer:
				var inf InferFrame
				if dec.DecodeInfer(p, &inf) == nil {
					reencodeInfer(t, &inf)
				}
			case TypeResult:
				var res ResultFrame
				if DecodeResult(p, &res) == nil {
					reencodeResult(t, &res)
				}
			case TypeError:
				var ef ErrorFrame
				_ = DecodeError(p, &ef)
			case TypeModels:
				_, _ = DecodeCorr(p)
			case TypeModelList:
				var ml ModelListFrame
				_ = dec.DecodeModelList(p, &ml)
			default:
				// Unknown type: transports drop the connection; the codec
				// just skips the payload.
			}
		}
	})
}

func reencodeInfer(t *testing.T, inf *InferFrame) {
	var rt bytes.Buffer
	enc := NewEncoder(&rt)
	if err := enc.Infer(inf); err != nil {
		if err == ErrFrameTooLarge {
			return // enormous decoded strings legitimately exceed the cap
		}
		t.Fatalf("re-encode infer: %v", err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	d2 := NewDecoder(&rt)
	_, p2, err := d2.Next()
	if err != nil {
		t.Fatalf("re-decode infer: %v", err)
	}
	var inf2 InferFrame
	if err := d2.DecodeInfer(p2, &inf2); err != nil {
		t.Fatalf("re-decode infer payload: %v", err)
	}
	if inf2 != *inf {
		t.Fatalf("infer round trip drifted: %+v -> %+v", *inf, inf2)
	}
}

func reencodeResult(t *testing.T, res *ResultFrame) {
	var rt bytes.Buffer
	enc := NewEncoder(&rt)
	if err := enc.Result(res); err != nil {
		t.Fatalf("re-encode result: %v", err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	_, p2, err := NewDecoder(&rt).Next()
	if err != nil {
		t.Fatalf("re-decode result: %v", err)
	}
	var res2 ResultFrame
	if err := DecodeResult(p2, &res2); err != nil {
		t.Fatalf("re-decode result payload: %v", err)
	}
	if res2 != *res {
		t.Fatalf("result round trip drifted: %+v -> %+v", *res, res2)
	}
}

// FuzzInferRoundTrip fuzzes the structured encode side: any field
// values must encode, decode back equal, and leave the stream empty.
func FuzzInferRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(250_000_000), int64(0), int64(0), "resnet50_v1b", "")
	f.Add(uint64(1<<64-1), int64(-1), int64(-1<<40), int64(1<<40), "", "tenant-β")
	f.Fuzz(func(t *testing.T, corr uint64, slo, prio, maxb int64, model, tenant string) {
		in := InferFrame{Corr: corr, SLO: slo, Priority: prio, MaxBatch: maxb,
			Model: model, Tenant: tenant}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Infer(&in); err != nil {
			if err == ErrFrameTooLarge {
				return
			}
			t.Fatalf("encode: %v", err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(&buf)
		typ, p, err := dec.Next()
		if err != nil || typ != TypeInfer {
			t.Fatalf("Next: type=%d err=%v", typ, err)
		}
		var out InferFrame
		if err := dec.DecodeInfer(p, &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out != in {
			t.Fatalf("round trip drifted: %+v -> %+v", in, out)
		}
		if _, _, err := dec.Next(); err != io.EOF {
			t.Fatalf("stream not empty after one frame: %v", err)
		}
	})
}
