package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Frame types. A zero type byte is invalid, so an all-zero header is
// rejected rather than silently decoded.
const (
	// TypeInfer (client→server) submits one inference.
	TypeInfer uint8 = 1
	// TypeResult (server→client) carries a completed inference outcome.
	TypeResult uint8 = 2
	// TypeError (server→client) answers a frame that could not be
	// served, carrying a stable error code plus a human-readable message.
	TypeError uint8 = 3
	// TypeModels (client→server) asks for the registered model list.
	TypeModels uint8 = 4
	// TypeModelList (server→client) answers TypeModels.
	TypeModelList uint8 = 5
)

// Error codes carried by TypeError frames. They mirror the HTTP wire
// codes of the JSON transport (package serve maps both onto the typed
// clockwork errors), so the two front doors cannot drift.
const (
	CodeInternal       uint8 = 0
	CodeUnknownModel   uint8 = 1
	CodeDuplicateModel uint8 = 2
	CodeInvalidRequest uint8 = 3
	CodeNoSuchWorker   uint8 = 4
	CodeWorkerDown     uint8 = 5
	CodeModelBusy      uint8 = 6
	CodeNoSuchShard    uint8 = 7
	// CodeOverloaded: the server's in-flight admission window is full;
	// retry after backing off (the binary-wire form of HTTP 429).
	CodeOverloaded uint8 = 8
	// CodeDraining: the server is shutting down and admits no new work
	// (the binary-wire form of HTTP 503 while draining).
	CodeDraining uint8 = 9
)

const (
	headerSize = 5

	// MaxFrameSize caps a frame payload (1MB, like the HTTP transport's
	// body cap) so a hostile peer cannot grow memory with one header.
	MaxFrameSize = 1 << 20

	// Intern-table bounds: model/tenant names repeat on every request,
	// so the decoder interns them — but only boundedly many and only
	// short ones, so a hostile peer cannot grow the table without limit.
	maxInternEntries = 4096
	maxInternLen     = 256
)

// Result flag bits.
const (
	flagSuccess   = 1 << 0
	flagColdStart = 1 << 1
)

var (
	// ErrFrameTooLarge reports a header announcing a payload beyond
	// MaxFrameSize.
	ErrFrameTooLarge = errors.New("stream: frame exceeds size limit")
	// ErrMalformedFrame reports a payload that does not parse as its
	// frame type (truncated varint, short string, trailing bytes).
	ErrMalformedFrame = errors.New("stream: malformed frame payload")
	// ErrUnknownFrameType reports a type byte this codec version does
	// not know.
	ErrUnknownFrameType = errors.New("stream: unknown frame type")
)

// InferFrame is the decoded form of a TypeInfer payload. SLO and
// Latency travel as nanoseconds.
type InferFrame struct {
	Corr     uint64
	SLO      int64
	Priority int64
	MaxBatch int64
	Model    string
	Tenant   string
}

// ResultFrame is the decoded form of a TypeResult payload. Model and
// tenant are not echoed — the client correlates by Corr and already
// knows what it asked for.
type ResultFrame struct {
	Corr      uint64
	RequestID uint64
	Latency   int64
	Batch     uint64
	Reason    uint8
	Success   bool
	ColdStart bool
}

// ErrorFrame is the decoded form of a TypeError payload.
type ErrorFrame struct {
	Corr    uint64
	Code    uint8
	Message string
}

// ModelListFrame is the decoded form of a TypeModelList payload.
type ModelListFrame struct {
	Corr   uint64
	Models []string
}

// Encoder writes frames to w through an internal buffered writer,
// reusing one payload scratch buffer across frames: steady-state
// encoding allocates nothing. Not safe for concurrent use.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
	// hdr is header scratch; a field rather than a stack array so the
	// io.Writer call does not force a heap escape per frame.
	hdr [headerSize]byte
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 32<<10), buf: make([]byte, 0, 256)}
}

// Infer encodes f as a TypeInfer frame.
func (e *Encoder) Infer(f *InferFrame) error {
	b := e.buf[:0]
	b = binary.AppendUvarint(b, f.Corr)
	b = binary.AppendVarint(b, f.SLO)
	b = binary.AppendVarint(b, f.Priority)
	b = binary.AppendVarint(b, f.MaxBatch)
	b = appendString(b, f.Model)
	b = appendString(b, f.Tenant)
	e.buf = b
	return e.frame(TypeInfer, b)
}

// Result encodes f as a TypeResult frame.
func (e *Encoder) Result(f *ResultFrame) error {
	var flags uint8
	if f.Success {
		flags |= flagSuccess
	}
	if f.ColdStart {
		flags |= flagColdStart
	}
	b := e.buf[:0]
	b = binary.AppendUvarint(b, f.Corr)
	b = binary.AppendUvarint(b, f.RequestID)
	b = append(b, flags, f.Reason)
	b = binary.AppendVarint(b, f.Latency)
	b = binary.AppendUvarint(b, f.Batch)
	e.buf = b
	return e.frame(TypeResult, b)
}

// Error encodes f as a TypeError frame.
func (e *Encoder) Error(f *ErrorFrame) error {
	b := e.buf[:0]
	b = binary.AppendUvarint(b, f.Corr)
	b = append(b, f.Code)
	b = appendString(b, f.Message)
	e.buf = b
	return e.frame(TypeError, b)
}

// Models encodes a TypeModels request frame.
func (e *Encoder) Models(corr uint64) error {
	b := binary.AppendUvarint(e.buf[:0], corr)
	e.buf = b
	return e.frame(TypeModels, b)
}

// ModelList encodes a TypeModelList frame.
func (e *Encoder) ModelList(corr uint64, models []string) error {
	b := e.buf[:0]
	b = binary.AppendUvarint(b, corr)
	b = binary.AppendUvarint(b, uint64(len(models)))
	for _, m := range models {
		b = appendString(b, m)
	}
	e.buf = b
	return e.frame(TypeModelList, b)
}

func (e *Encoder) frame(typ uint8, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := e.hdr[:]
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := e.w.Write(hdr); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// Flush pushes buffered frames to the underlying writer. Callers
// coalesce writes by encoding several frames per Flush.
func (e *Encoder) Flush() error { return e.w.Flush() }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Decoder reads frames from r through an internal buffered reader,
// reusing one payload buffer across frames and interning repeated
// short strings (model and tenant names): steady-state decoding
// allocates nothing. Not safe for concurrent use.
type Decoder struct {
	r       *bufio.Reader
	payload []byte
	names   map[string]string
	// hdr is header scratch; a field rather than a stack array so the
	// io.Reader call does not force a heap escape per frame.
	hdr [headerSize]byte
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		r:       bufio.NewReaderSize(r, 32<<10),
		payload: make([]byte, 0, 256),
		names:   make(map[string]string),
	}
}

// Buffered reports how many bytes are already readable without
// touching the connection — the transport's batching signal: frames
// readable now belong to the same scheduling quantum.
func (d *Decoder) Buffered() int { return d.r.Buffered() }

// Next reads one frame and returns its type and payload. The payload
// slice is owned by the decoder and valid only until the next call.
// io.EOF at a frame boundary surfaces as io.EOF; a partial frame is
// io.ErrUnexpectedEOF.
func (d *Decoder) Next() (uint8, []byte, error) {
	hdr := d.hdr[:]
	if _, err := io.ReadFull(d.r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	if cap(d.payload) < int(n) {
		d.payload = make([]byte, n)
	}
	p := d.payload[:n]
	if _, err := io.ReadFull(d.r, p); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[4], p, nil
}

// DecodeInfer parses a TypeInfer payload into f. Model and tenant
// strings are interned, so repeated names do not allocate.
func (d *Decoder) DecodeInfer(p []byte, f *InferFrame) error {
	c := cursor{p: p}
	f.Corr = c.uvarint()
	f.SLO = c.varint()
	f.Priority = c.varint()
	f.MaxBatch = c.varint()
	f.Model = d.intern(c.bytes())
	f.Tenant = d.intern(c.bytes())
	return c.finish()
}

// DecodeResult parses a TypeResult payload into f.
func DecodeResult(p []byte, f *ResultFrame) error {
	c := cursor{p: p}
	f.Corr = c.uvarint()
	f.RequestID = c.uvarint()
	flags := c.byte()
	f.Reason = c.byte()
	f.Latency = c.varint()
	f.Batch = c.uvarint()
	f.Success = flags&flagSuccess != 0
	f.ColdStart = flags&flagColdStart != 0
	return c.finish()
}

// DecodeError parses a TypeError payload into f. Messages are not
// interned (they are unbounded and off the steady-state path).
func DecodeError(p []byte, f *ErrorFrame) error {
	c := cursor{p: p}
	f.Corr = c.uvarint()
	f.Code = c.byte()
	f.Message = string(c.bytes())
	return c.finish()
}

// DecodeCorr parses a payload that is a bare correlation ID
// (TypeModels).
func DecodeCorr(p []byte) (uint64, error) {
	c := cursor{p: p}
	corr := c.uvarint()
	return corr, c.finish()
}

// DecodeModelList parses a TypeModelList payload into f, reusing
// f.Models' backing array.
func (d *Decoder) DecodeModelList(p []byte, f *ModelListFrame) error {
	c := cursor{p: p}
	f.Corr = c.uvarint()
	n := c.uvarint()
	if n > uint64(len(c.p)) { // each model costs ≥1 byte of payload
		return ErrMalformedFrame
	}
	f.Models = f.Models[:0]
	for i := uint64(0); i < n; i++ {
		f.Models = append(f.Models, d.intern(c.bytes()))
	}
	return c.finish()
}

func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.names) < maxInternEntries && len(s) <= maxInternLen {
		d.names[s] = s
	}
	return s
}

// cursor walks a payload; the first malformed field poisons it so
// decode functions read all fields unconditionally and check once.
type cursor struct {
	p   []byte
	bad bool
}

func (c *cursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.p)
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.p = c.p[n:]
	return v
}

func (c *cursor) varint() int64 {
	v, n := binary.Varint(c.p)
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.p = c.p[n:]
	return v
}

func (c *cursor) byte() uint8 {
	if len(c.p) == 0 {
		c.bad = true
		return 0
	}
	b := c.p[0]
	c.p = c.p[1:]
	return b
}

func (c *cursor) bytes() []byte {
	n := c.uvarint()
	if c.bad || n > uint64(len(c.p)) {
		c.bad = true
		return nil
	}
	b := c.p[:n]
	c.p = c.p[n:]
	return b
}

// finish rejects poisoned cursors and trailing junk: a frame must
// parse exactly.
func (c *cursor) finish() error {
	if c.bad || len(c.p) != 0 {
		return ErrMalformedFrame
	}
	return nil
}
