package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// newTestServer wires a small live system behind an httptest listener.
// Speed is high so virtual model latencies cost microseconds of wall
// time. Teardown (close the listener, then drain; Shutdown is
// idempotent, so tests may also drain themselves) runs via t.Cleanup.
func newTestServer(t *testing.T, cfg clockwork.Config, speed float64) (*Server, *Client) {
	t.Helper()
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := New(sys, Options{Speed: speed})
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, nil)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, client
}

func TestServeRoundTrip(t *testing.T) {
	_, client := newTestServer(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1}, 1000)
	ctx := context.Background()

	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	models, err := client.Models(ctx)
	if err != nil || len(models) != 1 || models[0] != "resnet" {
		t.Fatalf("Models = %v, %v; want [resnet]", models, err)
	}

	res, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !res.Success {
		t.Fatalf("Infer failed: %+v", res)
	}
	if res.RequestID == 0 || res.Latency <= 0 || res.Model != "resnet" {
		t.Fatalf("implausible result: %+v", res)
	}
	if !res.ColdStart {
		t.Errorf("first request should be a cold start: %+v", res)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Requests != 1 || st.Succeeded != 1 || st.Models != 1 || st.Workers != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestServeTypedErrors(t *testing.T) {
	_, client := newTestServer(t, clockwork.Config{}, 1000)
	ctx := context.Background()

	_, err := client.Infer(ctx, clockwork.Request{Model: "nope", SLO: time.Second})
	if !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("unknown model: got %v, want ErrUnknownModel", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown model: got %v, want 404 APIError", err)
	}

	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); !errors.Is(err, clockwork.ErrDuplicateModel) {
		t.Fatalf("duplicate: got %v, want ErrDuplicateModel", err)
	}
	if err := client.RegisterModel(ctx, "m2", "no-such-zoo"); !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("bad zoo: got %v, want ErrUnknownModel", err)
	}
	_, err = client.Infer(ctx, clockwork.Request{Model: "m", SLO: -time.Second})
	if !errors.Is(err, clockwork.ErrInvalidRequest) {
		t.Fatalf("bad SLO: got %v, want ErrInvalidRequest", err)
	}
	if err := client.DrainWorker(ctx, 99); !errors.Is(err, clockwork.ErrNoSuchWorker) {
		t.Fatalf("bad worker: got %v, want ErrNoSuchWorker", err)
	}
}

func TestServeAdminPlane(t *testing.T) {
	_, client := newTestServer(t,
		clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: 2}, 1000)
	ctx := context.Background()

	id, err := client.AddWorker(ctx)
	if err != nil || id != 2 {
		t.Fatalf("AddWorker = %d, %v; want 2", id, err)
	}
	if err := client.DrainWorker(ctx, id); err != nil {
		t.Fatalf("DrainWorker: %v", err)
	}
	if err := client.DrainWorker(ctx, id); !errors.Is(err, clockwork.ErrWorkerDown) {
		t.Fatalf("double drain: got %v, want ErrWorkerDown", err)
	}
	if err := client.FailWorker(ctx, 1); err != nil {
		t.Fatalf("FailWorker: %v", err)
	}

	if _, err := client.RegisterCopies(ctx, "res", "resnet50_v1b", 4); err != nil {
		t.Fatalf("RegisterCopies: %v", err)
	}
	sh, err := client.ShardStats(ctx)
	if err != nil {
		t.Fatalf("ShardStats: %v", err)
	}
	if len(sh.Shards) != 2 {
		t.Fatalf("ShardStats = %+v; want 2 shards", sh)
	}
	if _, err := client.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	_, client := newTestServer(t, clockwork.Config{}, 1000)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: 500 * time.Millisecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	resp, err := client.hc.Get(client.base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE clockwork_requests_total counter",
		"clockwork_requests_total 1",
		"clockwork_succeeded_total 1",
		`clockwork_latency_seconds{quantile="0.99"}`,
		"clockwork_models 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q; got:\n%s", want, text)
		}
	}
}

// TestServeGracefulDrain checks the shutdown contract: in-flight
// requests complete, new requests are refused, and the driver stops.
func TestServeGracefulDrain(t *testing.T) {
	// Real-time speed so requests are slow enough (milliseconds of
	// wall time) for the drain to overlap them.
	srv, client := newTestServer(t, clockwork.Config{}, 1)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]clockwork.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Infer(ctx, clockwork.Request{Model: "m", SLO: 2 * time.Second})
		}(i)
	}
	// Give the submissions a moment to get in flight, then drain.
	time.Sleep(20 * time.Millisecond)
	shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("in-flight request %d broken by drain: %v", i, errs[i])
		}
		if !results[i].Success {
			t.Fatalf("in-flight request %d failed: %+v", i, results[i])
		}
	}
	// Post-drain submissions are refused.
	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err == nil {
		t.Fatal("Infer after Shutdown should fail")
	}
}

// TestServeDrainDeadlineReleasesWaiters: when the drain deadline
// expires with requests still in flight, their handlers are released
// (error response) rather than stranded on a stopped clock.
func TestServeDrainDeadlineReleasesWaiters(t *testing.T) {
	// Very slow virtual clock: the in-flight request cannot complete
	// within the test, so only the stopCtx release can unblock it.
	srv, client := newTestServer(t, clockwork.Config{}, 0.001)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	inferDone := make(chan error, 1)
	go func() {
		_, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Hour})
		inferDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it get in flight

	shCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(shCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with in-flight work: %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-inferDone:
		if err == nil {
			t.Fatal("stranded infer should have errored")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("infer handler stranded after drain deadline")
	}
}

// TestServeEndToEndLoad is the acceptance run: a closed-loop load
// generation against the loopback server completing e2eRequests
// requests with zero lost and zero duplicated responses.
func TestServeEndToEndLoad(t *testing.T) {
	n := e2eRequests
	if testing.Short() {
		n = 5_000
	}
	_, client := newTestServer(t,
		clockwork.Config{Workers: 2, GPUsPerWorker: 2}, 2000)
	ctx := context.Background()
	if _, err := client.RegisterCopies(ctx, "res", "resnet50_v1b", 4); err != nil {
		t.Fatalf("RegisterCopies: %v", err)
	}

	rep, err := RunLoad(ctx, LoadConfig{
		Client:      client,
		SLO:         time.Second,
		Concurrency: 64,
		Duration:    10 * time.Minute, // the request budget terminates the run
		MaxRequests: uint64(n),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Sent != uint64(n) {
		t.Fatalf("sent %d requests, want %d", rep.Sent, n)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
	if lost := rep.Sent - rep.Completed - rep.Errors; lost != 0 {
		t.Fatalf("%d responses lost", lost)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicated responses", rep.Duplicates)
	}
	if rep.Goodput <= 0 {
		t.Fatalf("zero goodput: %+v", rep)
	}
	if rep.WithinSLO == 0 {
		t.Fatalf("nothing within SLO: %+v", rep)
	}
}

// TestServeOpenLoop exercises the Poisson open-loop path.
func TestServeOpenLoop(t *testing.T) {
	_, client := newTestServer(t, clockwork.Config{}, 1000)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	rep, err := RunLoad(ctx, LoadConfig{
		Client:      client,
		SLO:         time.Second,
		Concurrency: 16,
		Rate:        500,
		Duration:    time.Second,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Completed == 0 || rep.WithinSLO == 0 {
		t.Fatalf("open loop served nothing: %+v", rep)
	}
	if lost := rep.Sent - rep.Completed - rep.Errors; lost != 0 || rep.Duplicates != 0 {
		t.Fatalf("integrity: lost=%d dup=%d", lost, rep.Duplicates)
	}
}
