package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"clockwork"
	"clockwork/internal/telemetry"
	"clockwork/workload"
)

// Transport is the client-side face RunLoad drives: both Client
// (HTTP/JSON) and StreamClient (binary stream) satisfy it, so one
// load-generation loop measures either front door.
type Transport interface {
	Infer(ctx context.Context, req clockwork.Request) (clockwork.Result, error)
	Models(ctx context.Context) ([]string, error)
}

// BatchTransport is a Transport that can pipeline a whole batch of
// submissions in one write (StreamClient.SubmitBatch). RunLoad uses it
// when LoadConfig.Batch > 1.
type BatchTransport interface {
	Transport
	SubmitBatch(ctx context.Context, reqs []clockwork.Request) ([]BatchOutcome, error)
}

// LoadConfig parameterises one wall-clock load-generation run against a
// clockworkd server.
type LoadConfig struct {
	// Client is the target server's HTTP client. Either Client or
	// Transport must be set; Transport wins when both are.
	Client *Client
	// Transport, if non-nil, is the transport to drive — a
	// StreamClient, or any custom Transport.
	Transport Transport
	// Batch, if > 1, makes closed-loop workers submit their requests
	// in pipelined batches of this size (requires a BatchTransport;
	// open-loop mode ignores it).
	Batch int
	// Models are the instance names to spread requests over,
	// round-robin. Empty means "ask the server" (GET /v1/models).
	Models []string
	// SLO is the per-request latency objective (default 250ms virtual).
	SLO time.Duration
	// Concurrency is the closed-loop worker count — and, in open-loop
	// mode, the cap on outstanding requests (default 8).
	Concurrency int
	// Rate, if > 0, switches to open-loop mode: arrivals are Poisson at
	// this many requests per wall second (the §6.3 arrival process via
	// workload.NewPoissonArrivals), regardless of completions. Arrivals
	// that would exceed the Concurrency cap are counted as Overloaded
	// and dropped client-side, keeping the generator non-blocking.
	Rate float64
	// Duration bounds the run in wall time (default 2s). MaxRequests,
	// if > 0, additionally stops after that many submissions.
	Duration    time.Duration
	MaxRequests uint64
	// Seed seeds the arrival process (open loop only).
	Seed uint64
}

// LatencySummary condenses the client-observed wall-clock latency
// histogram into the paper's tail percentiles.
type LatencySummary struct {
	P50, P90, P99, P999, Max, Mean time.Duration
}

// LoadReport is the outcome of one load-generation run. Consistency
// invariant: Sent == Completed + Errors + Shed, and Duplicates == 0 —
// every submitted request got exactly one response.
type LoadReport struct {
	// Sent counts submissions; Completed counts HTTP-level successful
	// round trips (the request may still have failed inside the system
	// — see Succeeded); Errors counts transport/HTTP failures.
	Sent, Completed, Errors uint64
	// Overloaded counts open-loop arrivals dropped client-side because
	// Concurrency requests were already outstanding.
	Overloaded uint64
	// Shed counts requests the server refused with ErrOverloaded (its
	// in-flight admission window was full) — the backpressure signal.
	// ShedRate is Shed / Sent.
	Shed     uint64
	ShedRate float64
	// Duplicates counts responses carrying an already-seen request ID —
	// always 0 unless the serving plane loses track of a request.
	Duplicates uint64
	// Succeeded counts executed inferences; WithinSLO those inside
	// their SLO (judged on the engine's virtual clock, like the paper).
	Succeeded, WithinSLO uint64
	// Violations = Completed − WithinSLO: requests the service did not
	// answer within the objective, whatever the failure mode.
	Violations uint64
	// Goodput is WithinSLO per wall-clock second of the run;
	// ViolationRate is Violations / Completed.
	Goodput       float64
	ViolationRate float64
	Elapsed       time.Duration
	// Wall is the client-observed wall-clock round-trip latency;
	// Virtual the engine-observed (server-reported) latency.
	Wall    LatencySummary
	Virtual LatencySummary
}

// String renders the report in the loadgen's output format.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d completed=%d errors=%d shed=%d overloaded=%d duplicates=%d\n",
		r.Sent, r.Completed, r.Errors, r.Shed, r.Overloaded, r.Duplicates)
	if r.Shed > 0 {
		fmt.Fprintf(&b, "shed_rate=%.4f%%\n", r.ShedRate*100)
	}
	fmt.Fprintf(&b, "succeeded=%d within_slo=%d violations=%d\n",
		r.Succeeded, r.WithinSLO, r.Violations)
	fmt.Fprintf(&b, "goodput=%.1f req/s  violation_rate=%.4f%%  elapsed=%v\n",
		r.Goodput, r.ViolationRate*100, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "wall    p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
		r.Wall.P50, r.Wall.P90, r.Wall.P99, r.Wall.P999, r.Wall.Max)
	fmt.Fprintf(&b, "virtual p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
		r.Virtual.P50, r.Virtual.P90, r.Virtual.P99, r.Virtual.P999, r.Virtual.Max)
	return b.String()
}

// loadWorkerState is one generator goroutine's private accounting,
// merged after the run so the hot path takes no locks.
type loadWorkerState struct {
	sent, completed, errors uint64
	shed                    uint64
	succeeded, withinSLO    uint64
	wall, virtual           *telemetry.Histogram
	ids                     []uint64
}

func newLoadWorkerState() *loadWorkerState {
	return &loadWorkerState{wall: telemetry.NewHistogram(), virtual: telemetry.NewHistogram()}
}

// RunLoad drives load at the configured shape until Duration (or
// MaxRequests, or ctx) and reports. The generator waits for every
// outstanding request before returning, so the report is complete: no
// request is in flight when RunLoad returns.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	transport := cfg.Transport
	if transport == nil {
		if cfg.Client == nil {
			return nil, fmt.Errorf("serve: LoadConfig needs a Client or a Transport")
		}
		transport = cfg.Client
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	var batcher BatchTransport
	if cfg.Batch > 1 && cfg.Rate <= 0 {
		var ok bool
		if batcher, ok = transport.(BatchTransport); !ok {
			return nil, fmt.Errorf("serve: Batch=%d needs a batch-capable transport (use the stream transport)", cfg.Batch)
		}
	}
	models := cfg.Models
	if len(models) == 0 {
		var err error
		models, err = transport.Models(ctx)
		if err != nil {
			return nil, fmt.Errorf("serve: listing models: %w", err)
		}
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("serve: no models registered and none configured")
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var budget *uint64
	if cfg.MaxRequests > 0 {
		b := cfg.MaxRequests
		budget = &b
	}
	var budgetMu sync.Mutex
	// takeN claims up to n submissions from the request budget.
	takeN := func(n int) int {
		if budget == nil {
			return n
		}
		budgetMu.Lock()
		defer budgetMu.Unlock()
		if uint64(n) > *budget {
			n = int(*budget)
		}
		*budget -= uint64(n)
		return n
	}
	take := func() bool { return takeN(1) == 1 }

	start := time.Now()
	states := make([]*loadWorkerState, 0, cfg.Concurrency)
	var overloaded uint64

	// one round trip: submit, measure, account. Uses the caller's ctx,
	// not the duration-bounded runCtx: the run window closes the
	// admission of new requests, while requests already in flight run
	// to their outcome (the server answers every request by its
	// deadline, so this is bounded).
	// account books one round trip's outcome into the worker state.
	account := func(st *loadWorkerState, res clockwork.Result, err error, wall time.Duration) {
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				st.shed++ // server shed the request by design, not a fault
			} else {
				st.errors++
			}
			return
		}
		st.completed++
		st.wall.Observe(wall)
		st.virtual.Observe(res.Latency)
		st.ids = append(st.ids, res.RequestID)
		if res.Success {
			st.succeeded++
			if res.Latency <= cfg.SLO {
				st.withinSLO++
			}
		}
	}

	fire := func(st *loadWorkerState, model string) {
		st.sent++
		t0 := time.Now()
		res, err := transport.Infer(ctx, clockwork.Request{Model: model, SLO: cfg.SLO})
		account(st, res, err, time.Since(t0))
	}

	// fireBatch pipelines one batch through a BatchTransport. The wall
	// figure is the whole batch's round trip, charged to every member:
	// that is the latency a batching client actually observes.
	fireBatch := func(st *loadWorkerState, reqs []clockwork.Request) {
		st.sent += uint64(len(reqs))
		t0 := time.Now()
		outs, err := batcher.SubmitBatch(ctx, reqs)
		wall := time.Since(t0)
		if err != nil {
			st.errors += uint64(len(reqs))
			return
		}
		for _, o := range outs {
			account(st, o.Result, o.Err, wall)
		}
	}

	var wg sync.WaitGroup
	if cfg.Rate <= 0 {
		// Closed loop: each worker keeps exactly one request (or one
		// pipelined batch) in flight.
		for i := 0; i < cfg.Concurrency; i++ {
			st := newLoadWorkerState()
			states = append(states, st)
			wg.Add(1)
			go func(i int, st *loadWorkerState) {
				defer wg.Done()
				reqs := make([]clockwork.Request, 0, cfg.Batch)
				for n := i; runCtx.Err() == nil; n++ {
					if batcher != nil {
						k := takeN(cfg.Batch)
						if k == 0 {
							return
						}
						reqs = reqs[:0]
						for j := 0; j < k; j++ {
							reqs = append(reqs, clockwork.Request{
								Model: models[(n*cfg.Batch+j)%len(models)], SLO: cfg.SLO})
						}
						fireBatch(st, reqs)
						continue
					}
					if !take() {
						return
					}
					fire(st, models[n%len(models)])
				}
			}(i, st)
		}
		wg.Wait()
	} else {
		// Open loop: a pacer draws Poisson gaps; a semaphore caps
		// outstanding requests so overload degrades by dropping
		// client-side instead of blocking the arrival process.
		arrivals := workload.NewPoissonArrivals(cfg.Seed, cfg.Rate)
		sem := make(chan *loadWorkerState, cfg.Concurrency)
		for i := 0; i < cfg.Concurrency; i++ {
			st := newLoadWorkerState()
			states = append(states, st)
			sem <- st
		}
		timer := time.NewTimer(0)
		defer timer.Stop()
		n := 0
	pace:
		for {
			select {
			case <-runCtx.Done():
				break pace
			case <-timer.C:
			}
			timer.Reset(arrivals.Next())
			select {
			case st := <-sem:
				// Charge the request budget only for arrivals actually
				// submitted — overloaded drops don't consume it.
				if !take() {
					sem <- st
					break pace
				}
				model := models[n%len(models)]
				n++
				wg.Add(1)
				go func() {
					defer wg.Done()
					fire(st, model)
					sem <- st
				}()
			default:
				overloaded++
			}
		}
		wg.Wait()
	}

	elapsed := time.Since(start)
	rep := &LoadReport{Overloaded: overloaded, Elapsed: elapsed}
	wall, virtual := telemetry.NewHistogram(), telemetry.NewHistogram()
	seen := make(map[uint64]struct{}, 1<<16)
	for _, st := range states {
		rep.Sent += st.sent
		rep.Completed += st.completed
		rep.Errors += st.errors
		rep.Shed += st.shed
		rep.Succeeded += st.succeeded
		rep.WithinSLO += st.withinSLO
		wall.Merge(st.wall)
		virtual.Merge(st.virtual)
		for _, id := range st.ids {
			if _, dup := seen[id]; dup {
				rep.Duplicates++
			}
			seen[id] = struct{}{}
		}
	}
	rep.Violations = rep.Completed - rep.WithinSLO
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Goodput = float64(rep.WithinSLO) / secs
	}
	if rep.Completed > 0 {
		rep.ViolationRate = float64(rep.Violations) / float64(rep.Completed)
	}
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
	}
	rep.Wall = summarize(wall)
	rep.Virtual = summarize(virtual)
	return rep, nil
}

func summarize(h *telemetry.Histogram) LatencySummary {
	return LatencySummary{
		P50:  h.Percentile(50),
		P90:  h.Percentile(90),
		P99:  h.Percentile(99),
		P999: h.Percentile(99.9),
		Max:  h.Max(),
		Mean: h.Mean(),
	}
}
