package serve

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"clockwork"
)

// BenchmarkServeRoundTrip measures the serving plane's per-request
// overhead: one sequential client over loopback HTTP against an
// in-process server at a high speed multiplier, so the virtual-clock
// inference cost is microseconds of wall time and the measured figure
// is dominated by the HTTP + Inject + Wait plumbing this PR adds on
// top of the §6.5 control-plane cost.
func BenchmarkServeRoundTrip(b *testing.B) {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		b.Fatal(err)
	}
	srv := New(sys, Options{Speed: 10_000})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	// Warm the model onto a GPU so the steady state is measured.
	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatalf("infer failed: %+v", res)
		}
	}
}

// BenchmarkLiveRoundTrip measures the serving plane's engine floor:
// one submission injected onto the live engine plus the completion
// wait, with no network transport at all. Both transports pay this
// cost; their benchmark figure minus this one is the per-request
// transport overhead.
func BenchmarkLiveRoundTrip(b *testing.B) {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		b.Fatal(err)
	}
	live := sys.StartLive(10_000)
	defer live.Stop()
	ctx := context.Background()
	// The submit closure is hoisted so the measured loop allocates
	// nothing of its own: handles are values, and the slot recycles
	// through Release.
	var h clockwork.Handle
	var serr error
	submit := func() {
		h, serr = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	}
	fire := func() {
		if doErr := live.Do(submit); doErr != nil {
			b.Fatal(doErr)
		}
		if serr != nil {
			b.Fatal(serr)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
	fire() // warm the model onto a GPU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fire()
	}
}

// newBenchStreamServer wires a warm system behind a loopback stream
// listener for the transport benchmarks and the allocation ratchets.
func newBenchStreamServer(b testing.TB, conns int, copies int) (*Server, *StreamClient, []string) {
	b.Helper()
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		b.Fatal(err)
	}
	models := []string{"m"}
	if copies > 1 {
		if models, err = sys.RegisterCopies("m", "resnet50_v1b", copies); err != nil {
			b.Fatal(err)
		}
	} else if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		b.Fatal(err)
	}
	srv := New(sys, Options{Speed: 10_000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.ServeStream(ln) }()
	client, err := DialStream(ln.Addr().String(), StreamOptions{Conns: conns})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		client.Close()
	})
	// Warm the models onto a GPU so the steady state is measured.
	for _, m := range models {
		if _, err := client.Infer(context.Background(), clockwork.Request{Model: m, SLO: time.Second}); err != nil {
			b.Fatal(err)
		}
	}
	return srv, client, models
}

// BenchmarkStreamRoundTrip is BenchmarkServeRoundTrip's fast-path
// twin: the same sequential loopback round trip, over the binary
// stream transport instead of HTTP/JSON. The ISSUE-5 acceptance bar is
// ≤ 1/3 of the HTTP figure on the same machine.
func BenchmarkStreamRoundTrip(b *testing.B) {
	_, client, _ := newBenchStreamServer(b, 1, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatalf("infer failed: %+v", res)
		}
	}
}

// BenchmarkStreamBatchRoundTrip measures pipelined batched submission:
// 64 requests per SubmitBatch, one coalesced write and one engine
// injection server-side. ns/op is per request, not per batch.
func BenchmarkStreamBatchRoundTrip(b *testing.B) {
	_, client, models := newBenchStreamServer(b, 1, 4)
	ctx := context.Background()
	const batch = 64
	reqs := make([]clockwork.Request, batch)
	for i := range reqs {
		reqs[i] = clockwork.Request{Model: models[i%len(models)], SLO: time.Second}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		outs, err := client.SubmitBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			// Engine-level outcomes (including a worker rejecting a
			// same-instant burst it cannot schedule) are valid round
			// trips; only transport failures void the measurement.
			if o.Err != nil {
				b.Fatalf("batched infer transport failure: %v", o.Err)
			}
		}
	}
}
