package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"clockwork"
)

// BenchmarkServeRoundTrip measures the serving plane's per-request
// overhead: one sequential client over loopback HTTP against an
// in-process server at a high speed multiplier, so the virtual-clock
// inference cost is microseconds of wall time and the measured figure
// is dominated by the HTTP + Inject + Wait plumbing this PR adds on
// top of the §6.5 control-plane cost.
func BenchmarkServeRoundTrip(b *testing.B) {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		b.Fatal(err)
	}
	srv := New(sys, Options{Speed: 10_000})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	// Warm the model onto a GPU so the steady state is measured.
	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatalf("infer failed: %+v", res)
		}
	}
}
