package serve

import (
	"errors"
	"net/http"
	"time"

	"clockwork"
	"clockwork/internal/autoscale"
)

// This file is the actuation half of the closed control loop: package
// autoscale decides, this file observes and applies. Each control
// period Live.Every injects autoscaleTick onto the engine (under the
// stop-the-world barrier with EnginePerShard), where it gathers one
// period's signals at a single virtual instant, runs the pure
// controller, and actuates — window resize at the serve layer, worker
// ops and rebalance inside the engine. With journaling on, the tick's
// injected closure appends exactly one record: the decision
// (recAutoscale) when anything moved, a no-op otherwise, so replay
// consumes the tick's engine step one-for-one and recovery carries the
// adapted window forward.

// AutoscaleConfig configures the closed-loop autoscaler (re-exported
// so callers outside the module can build one; see
// internal/autoscale.Config for field semantics).
type AutoscaleConfig = autoscale.Config

// ErrNoAutoscaler is returned by the autoscaler admin endpoints when
// the server was built without Options.Autoscale.
var ErrNoAutoscaler = errors.New("autoscaling is not enabled (start with -autoscale)")

// autoscaleTick runs engine-side once per control period: gather the
// period's signals, evaluate, actuate, journal. Exactly one goroutine
// (the Every ticker) triggers it, so the controller and the signal
// drains keep their single-consumer discipline.
func (s *Server) autoscaleTick() {
	// Drain the period accumulators even when paused, so a re-enable
	// starts from a fresh period instead of a backlog of stale signal.
	shed := s.shedPeriod.Swap(0)
	rs := s.sys.DrainRecentStats()
	if !s.ascEnabled.Load() {
		s.recNoop()
		return
	}

	var demand time.Duration
	gpus := 0
	for _, sd := range s.sys.DemandSnapshot() {
		demand += sd.Demand
		gpus += sd.SchedulableGPUs
	}
	window := s.MaxInFlight()
	d := s.asc.Evaluate(autoscale.Signals{
		Completed:       rs.Completed,
		Violations:      rs.Violations,
		Shed:            shed,
		P99:             rs.P99,
		SLO:             rs.MinSLO,
		Demand:          demand,
		SchedulableGPUs: gpus,
		ActiveWorkers:   s.sys.ActiveWorkers(),
		Window:          window,
	})

	added, drainID, rebal := 0, -1, false
	if d.Window != window {
		s.SetMaxInFlight(d.Window)
	}
	for i := 0; i < d.AddWorkers; i++ {
		s.sys.AddWorker()
		added++
	}
	if d.DrainWorker {
		// The decision says "drain one"; the deterministic convention
		// says which: the highest-ID active worker. The chosen ID goes
		// into the journal record so replay drains the same one.
		if id := s.highestActiveWorker(); id >= 0 {
			if err := s.sys.DrainWorker(id); err == nil {
				drainID = id
			}
		}
	}
	if d.Rebalance && (added > 0 || drainID >= 0) {
		rebal = true
		s.sys.Rebalance()
	}

	moved := d.Window != window || added > 0 || drainID >= 0 || rebal
	if s.rec != nil {
		if moved {
			s.rec.Autoscale(d.Window, added, drainID, rebal)
		} else {
			s.rec.Noop()
		}
	}

	// Lock-free status mirrors for /metrics and the admin plane — no
	// engine call needed to observe the loop.
	s.ascTicks.Add(1)
	if moved {
		s.ascMoves.Add(1)
	}
	s.ascAdded.Add(uint64(added))
	if drainID >= 0 {
		s.ascDrained.Add(1)
	}
	s.ascWindow.Store(int64(d.Window))
	if d.Reason != "" {
		s.ascMu.Lock()
		s.ascReason = d.Reason
		s.ascMu.Unlock()
	}
}

// highestActiveWorker returns the largest worker ID still in
// WorkerActive state, or -1. Engine-side read.
func (s *Server) highestActiveWorker() int {
	for id := s.sys.Workers() - 1; id >= 0; id-- {
		if st, err := s.sys.WorkerStateOf(id); err == nil && st == clockwork.WorkerActive {
			return id
		}
	}
	return -1
}

// handleAutoscalerGet (GET /v1/admin/autoscaler) reports the loop's
// status from the lock-free mirrors — no engine call, no record.
func (s *Server) handleAutoscalerGet(w http.ResponseWriter, r *http.Request) {
	if s.asc == nil {
		writeError(w, http.StatusNotFound, "no_autoscaler", ErrNoAutoscaler)
		return
	}
	writeJSON(w, s.autoscalerStatus())
}

func (s *Server) autoscalerStatus() AutoscalerStatusResponse {
	cfg := s.asc.Config()
	s.ascMu.Lock()
	reason := s.ascReason
	s.ascMu.Unlock()
	return AutoscalerStatusResponse{
		Enabled:        s.ascEnabled.Load(),
		Window:         int(s.ascWindow.Load()),
		MinWindow:      cfg.MinWindow,
		MaxWindow:      cfg.MaxWindow,
		MinWorkers:     cfg.MinWorkers,
		MaxWorkers:     cfg.MaxWorkers,
		Period:         cfg.Period,
		Ticks:          s.ascTicks.Load(),
		Decisions:      s.ascMoves.Load(),
		WorkersAdded:   s.ascAdded.Load(),
		WorkersDrained: s.ascDrained.Load(),
		ShedTotal:      s.shedTotal.Load(),
		LastReason:     reason,
	}
}

// handleAutoscalerPost (POST /v1/admin/autoscaler) pauses/resumes the
// loop and force-sets the window. A manual window set is a real
// control-plane movement: it runs engine-side and is journaled as an
// autoscale record, so recovery restores the operator's window exactly
// like an automatic one.
func (s *Server) handleAutoscalerPost(w http.ResponseWriter, r *http.Request) {
	if s.asc == nil {
		writeError(w, http.StatusNotFound, "no_autoscaler", ErrNoAutoscaler)
		return
	}
	var req AutoscalerUpdateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Enabled != nil {
		s.ascEnabled.Store(*req.Enabled)
	}
	if req.Window != nil {
		cfg := s.asc.Config()
		n := *req.Window
		if n < cfg.MinWindow {
			n = cfg.MinWindow
		}
		if n > cfg.MaxWindow {
			n = cfg.MaxWindow
		}
		doErr := s.live.Do(func() {
			if s.rec != nil {
				s.rec.Autoscale(n, 0, -1, false)
			}
			s.SetMaxInFlight(n)
			s.ascWindow.Store(int64(n))
		})
		if doErr != nil {
			writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
			return
		}
	}
	writeJSON(w, s.autoscalerStatus())
}
