// Package serve is the live serving plane: it turns a virtual-clock
// clockwork.System into a network service that real clients hit over
// HTTP, the role the paper's §6 deployment plays in front of its
// workers.
//
// Four pieces, front to back:
//
//   - Server: an HTTP/JSON front end (POST /v1/infer, model
//     registration, the worker/shard admin plane, GET /metrics in
//     Prometheus text format) that bridges concurrent connections onto
//     the single-threaded engine through clockwork.Live — every
//     engine-side call is injected onto the engine goroutine, every
//     connection handler blocks on Handle.Wait, and graceful Shutdown
//     drains in-flight requests before stopping the clock. Both
//     transports admit through one bounded in-flight window
//     (Options.MaxInFlight): beyond it HTTP answers 429 and the stream
//     a typed overloaded frame (ErrOverloaded).
//   - The stream transport (Server.ServeStream + StreamClient, wire
//     codec in serve/stream): the fast path — length-prefixed binary
//     frames over TCP, many in-flight requests multiplexed per
//     connection and correlated by ID, every batch of frames readable
//     in one scheduling quantum submitted to the engine as a single
//     injection, and SubmitBatch pipelining whole batches through one
//     write. Several-fold cheaper per request than HTTP/JSON.
//   - Client: a typed Go client mirroring the in-process
//     Request/Result API, including the typed error taxonomy
//     (errors.Is against clockwork.ErrUnknownModel etc. works
//     unchanged over either wire).
//   - RunLoad: an open/closed-loop wall-clock load generator reusing
//     the workload package's Poisson arrival process, driving either
//     transport (LoadConfig.Transport), reporting goodput,
//     SLO-violation rate, shed rate and wall/virtual latency tails.
//
// The determinism boundary sits at the Server: below it the engine
// processes events exactly as in simulation; the only nondeterminism a
// live system sees is the wall-clock arrival timing of injected work.
// The virtual-clock experiment paths never touch this package. See
// ARCHITECTURE.md, "Serving plane".
package serve
