package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// newTracedTestServer is newTestServer with the flight recorder on at
// rate 1.
func newTracedTestServer(t *testing.T, cfg clockwork.Config, speed float64) (*Server, *Client, string) {
	t.Helper()
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := New(sys, Options{Speed: speed, Trace: &TraceConfig{Enabled: true, SampleRate: 1}})
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, nil)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, client, ts.URL
}

// perfettoDump is the subset of the Chrome trace-event envelope the
// tests inspect.
type perfettoDump struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		TID   uint64         `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]any `json:"otherData"`
}

func getTraceDump(t *testing.T, url string) perfettoDump {
	t.Helper()
	resp, err := http.Get(url + "/v1/admin/trace")
	if err != nil {
		t.Fatalf("GET /v1/admin/trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/admin/trace: status %d", resp.StatusCode)
	}
	var dump perfettoDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	return dump
}

func TestTraceEndpointExportsLifecycle(t *testing.T) {
	_, client, url := newTracedTestServer(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1}, 1000)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
			t.Fatalf("Infer: %v", err)
		}
	}
	// An unmeetable SLO produces a violation trace (always retained).
	if res, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: time.Nanosecond}); err != nil {
		t.Fatalf("Infer (tight SLO): %v", err)
	} else if res.Success {
		t.Fatalf("nanosecond SLO should be unmeetable: %+v", res)
	}

	dump := getTraceDump(t, url)
	var requests, stages, violations, execs int
	for _, ev := range dump.TraceEvents {
		switch ev.Args["kind"] {
		case "request":
			requests++
		case "stage":
			stages++
		case "violation":
			violations++
		}
		if ev.Phase == "X" && ev.PID == 1 && strings.HasPrefix(ev.Name, "INFER ") {
			execs++
		}
	}
	if requests != 6 {
		t.Fatalf("want 6 request spans, got %d", requests)
	}
	if stages == 0 || execs == 0 {
		t.Fatalf("missing stage (%d) or exec (%d) spans", stages, execs)
	}
	if violations == 0 {
		t.Fatal("the tight-SLO request should have emitted a violation instant")
	}
	if dump.OtherData["clockwork"] != "flight-recorder" {
		t.Fatalf("otherData missing recorder tag: %v", dump.OtherData)
	}
	// Live mode must stamp the wall↔virtual correlation.
	if _, ok := dump.OtherData["wall_origin"]; !ok {
		t.Fatalf("otherData missing wall_origin: %v", dump.OtherData)
	}
}

func TestTraceAdminControls(t *testing.T) {
	srv, client, url := newTracedTestServer(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1}, 1000)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	post := func(body string) TraceStatusResponse {
		t.Helper()
		resp, err := http.Post(url+"/v1/admin/trace", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/admin/trace: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /v1/admin/trace: status %d: %s", resp.StatusCode, b)
		}
		var st TraceStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		return st
	}

	st := post(`{"enabled": false, "sample_rate": 0.25}`)
	if st.Enabled || st.SampleRate != 0.25 {
		t.Fatalf("controls not applied: %+v", st)
	}
	if srv.flight.Enabled() {
		t.Fatal("recorder still enabled after POST disabled")
	}
	// Disabled: new requests leave no trace.
	if _, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if st = post(`{}`); st.Stats.Finalized != 0 {
		t.Fatalf("disabled recorder finalized traces: %+v", st.Stats)
	}

	st = post(`{"enabled": true, "sample_rate": 1}`)
	if !st.Enabled || st.SampleRate != 1 {
		t.Fatalf("re-enable not applied: %+v", st)
	}
	if _, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if st = post(`{}`); st.Stats.Finalized != 1 || st.Stats.SampledKept != 1 {
		t.Fatalf("re-enabled recorder missed the request: %+v", st.Stats)
	}

	// Out-of-range rates are rejected.
	resp, err := http.Post(url+"/v1/admin/trace", "application/json", strings.NewReader(`{"sample_rate": 1.5}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sample_rate 1.5 should be a 400, got %d", resp.StatusCode)
	}
}

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

func TestMetricsTraceSeriesAndLint(t *testing.T) {
	_, client, url := newTracedTestServer(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1}, 1000)
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	if _, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if _, err := client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: time.Nanosecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}

	body := scrapeMetrics(t, url)
	for _, want := range []string{
		`clockwork_stage_seconds{stage="exec",quantile="0.5"}`,
		`clockwork_stage_seconds_count{stage="queue"}`,
		"clockwork_predict_error_seconds_count",
		"clockwork_slo_miss_provenance_total{cause=",
		"clockwork_trace_enabled 1",
		"clockwork_trace_sample_rate 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	lintMetrics(t, body)
}

// lintMetrics asserts the exposition-format hygiene the CI job also
// checks: every clockwork_* family declares HELP and TYPE exactly once
// before its samples, and no family is declared twice.
func lintMetrics(t *testing.T, body string) {
	t.Helper()
	helps := map[string]int{}
	types := map[string]int{}
	samples := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helps[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]]++
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		samples[name] = true
	}
	family := func(name string) string {
		for _, suf := range []string{"_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && (helps[base] > 0 || types[base] > 0) {
				return base
			}
		}
		return name
	}
	for name := range samples {
		fam := family(name)
		if helps[fam] != 1 || types[fam] != 1 {
			t.Errorf("family %s: HELP×%d TYPE×%d (want exactly 1 each)", fam, helps[fam], types[fam])
		}
	}
	for fam, n := range helps {
		if n > 1 {
			t.Errorf("family %s declared %d times", fam, n)
		}
	}
}

// TestMetricsScrapeDuringLoadMulticore races /metrics and trace-dump
// scrapes against inference load on both transports with one engine
// per shard — the satellite-2 audit: every scrape must observe a
// single virtual instant (the stop-the-world barrier) without
// tripping the race detector or deadlocking.
func TestMetricsScrapeDuringLoadMulticore(t *testing.T) {
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: 2, EnginePerShard: true},
		Options{Speed: 2000, Trace: &TraceConfig{Enabled: true, SampleRate: 1}})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	httpURL := client.base

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(viaStream bool) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var err error
				if viaStream {
					_, err = sc.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 400 * time.Millisecond})
				} else {
					_, err = client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 400 * time.Millisecond})
				}
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
			}
		}(w == 0)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			body := scrapeMetrics(t, httpURL)
			if !strings.Contains(body, "clockwork_requests_total") {
				t.Error("scrape missing core series")
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			getTraceDump(t, httpURL)
		}
	}()
	wg.Wait()

	// After the load drains, the recorder must have seen every request.
	dump := getTraceDump(t, httpURL)
	var requests int
	for _, ev := range dump.TraceEvents {
		if ev.Args["kind"] == "request" {
			requests++
		}
	}
	if requests != 50 {
		t.Fatalf("want 50 request spans across shards, got %d", requests)
	}
}
