package serve

import (
	"errors"
	"net/http"

	"clockwork"
	"clockwork/serve/stream"
)

// Typed serving-plane errors. They complement the clockwork error
// taxonomy with conditions only a live server can produce; both
// transports map them onto the wire (HTTP status + code string, stream
// error-frame code byte) and both clients map them back, so errors.Is
// works identically in-process, over JSON and over the binary stream.
var (
	// ErrOverloaded: the server's in-flight admission window is full
	// (Options.MaxInFlight). HTTP answers 429 with Retry-After; the
	// stream transport answers a typed error frame. Back off and retry.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: server draining")
	// ErrStreamClosed: the stream transport's connection dropped (or was
	// closed) with the request still in flight. The request itself may
	// still run to its outcome server-side; only the response channel is
	// gone.
	ErrStreamClosed = errors.New("serve: stream connection closed")
)

// wireCode is one row of the serving plane's error vocabulary: the
// JSON transport's (status, code string) pair, the stream transport's
// code byte, and the typed error both map back to. One table keeps the
// two front doors from drifting.
type wireCode struct {
	code   string
	status int
	wire   uint8
	err    error
}

var wireCodes = []wireCode{
	{"unknown_model", http.StatusNotFound, stream.CodeUnknownModel, clockwork.ErrUnknownModel},
	{"duplicate_model", http.StatusConflict, stream.CodeDuplicateModel, clockwork.ErrDuplicateModel},
	{"invalid_request", http.StatusBadRequest, stream.CodeInvalidRequest, clockwork.ErrInvalidRequest},
	{"no_such_worker", http.StatusNotFound, stream.CodeNoSuchWorker, clockwork.ErrNoSuchWorker},
	{"worker_down", http.StatusConflict, stream.CodeWorkerDown, clockwork.ErrWorkerDown},
	{"model_busy", http.StatusConflict, stream.CodeModelBusy, clockwork.ErrModelBusy},
	{"no_such_shard", http.StatusNotFound, stream.CodeNoSuchShard, clockwork.ErrNoSuchShard},
	{"overloaded", http.StatusTooManyRequests, stream.CodeOverloaded, ErrOverloaded},
	{"draining", http.StatusServiceUnavailable, stream.CodeDraining, ErrDraining},
}

// errToCode maps a typed error onto its (status, code) pair; unmatched
// errors are 500 "internal".
func errToCode(err error) (int, string) {
	for _, c := range wireCodes {
		if errors.Is(err, c.err) {
			return c.status, c.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// errToWire maps a typed error onto the stream transport's code byte.
func errToWire(err error) uint8 {
	for _, c := range wireCodes {
		if errors.Is(err, c.err) {
			return c.wire
		}
	}
	return stream.CodeInternal
}

// codeToErr maps a JSON wire code back onto the typed error (nil for
// "internal" and unknown codes).
func codeToErr(code string) error {
	for _, c := range wireCodes {
		if c.code == code {
			return c.err
		}
	}
	return nil
}

// wireToErr maps a stream code byte back onto the typed error.
func wireToErr(wire uint8) error {
	for _, c := range wireCodes {
		if c.wire == wire {
			return c.err
		}
	}
	return nil
}

// wireToCode maps a stream code byte onto the JSON transport's
// (status, code) vocabulary, so stream errors render as APIError with
// the same fields a JSON client would see.
func wireToCode(wire uint8) (int, string) {
	for _, c := range wireCodes {
		if c.wire == wire {
			return c.status, c.code
		}
	}
	return http.StatusInternalServerError, "internal"
}
