package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// newOptsServer is newTestServer with full Options control (the
// admission-window tests need MaxInFlight and slow speeds).
func newOptsServer(t *testing.T, cfg clockwork.Config, opts Options) (*Server, *Client) {
	t.Helper()
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := New(sys, opts)
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, nil)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, client
}

// TestHTTPDisconnectKeepsWindowCharged is the admission-leak
// regression: a client that disconnects mid-request must NOT release
// its admission slot — the request still occupies the engine, so the
// MaxInFlight window has to keep counting it until the outcome exists.
// The old handler released on handler return (defer), so a disconnect
// reopened the window while the engine was still busy.
func TestHTTPDisconnectKeepsWindowCharged(t *testing.T) {
	// Speed 0.02: the first (cold-start) request costs ~9ms of virtual
	// time = roughly half a second of wall time, a wide window to
	// disconnect inside.
	_, client := newOptsServer(t,
		clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true},
		Options{Speed: 0.02, MaxInFlight: 1})
	ctx := context.Background()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	ctxA, cancelA := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := client.Infer(ctxA, clockwork.Request{Model: "m", SLO: time.Minute})
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // admitted and submitted, far from done
	cancelA()                          // client walks away
	if err := <-errc; err == nil {
		t.Fatal("disconnected Infer reported success")
	}
	// Give the abandoned handler time to unwind: with the old
	// release-on-return behaviour the window would be open again by now.
	time.Sleep(100 * time.Millisecond)

	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Minute}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("window reopened while abandoned request still in flight: got %v, want ErrOverloaded", err)
	}

	// The slot is charged until the OUTCOME, not forever: once the
	// abandoned request completes inside the engine, the window reopens.
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Minute})
		if err == nil {
			return
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("Infer: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after the abandoned request's outcome")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestWriteJSONEncodeFailure: an unencodable value must produce a real
// 500 errorResponse, not the silent empty 200 the old streaming-encoder
// path wrote.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]any{"x": math.NaN()}) // NaN has no JSON encoding
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("500 body is not an errorResponse: %v (%q)", err, rec.Body.String())
	}
	if er.Code != "encode_failed" || er.Error == "" {
		t.Fatalf("errorResponse = %+v", er)
	}
}

// TestWriteJSONSuccessUnchanged: the buffer-encode path still writes
// normal responses byte-for-byte.
func TestWriteJSONSuccessUnchanged(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]int{"n": 7})
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := rec.Body.String(); got != "{\"n\":7}\n" {
		t.Fatalf("body = %q", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// TestStreamInjectAfterStopReleasesWindow is the slot-strand
// regression: frames arriving after the live driver stopped used to be
// silently dropped by Inject with their admission slots still held, so
// Shutdown's drain hung until its deadline. Now the abort path answers
// every item with an error frame and releases its slot.
func TestStreamInjectAfterStopReleasesWindow(t *testing.T) {
	srv, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 1, GPUsPerWorker: 1}, Options{Speed: 1000, MaxInFlight: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.RegisterModel(ctx, "m", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}

	// Stop the driver out from under the server (an embedding caller may
	// do this directly; Shutdown has not begun, so admission still says
	// yes).
	srv.Live().Stop()

	// The infer must come back as a typed error frame, not hang.
	if _, err := sc.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err == nil {
		t.Fatal("Infer after driver stop reported success")
	}
	// And the models control frame must be answered too.
	if _, err := sc.Models(ctx); err == nil {
		t.Fatal("Models after driver stop reported success")
	}

	// The admission slots must all be back: a stranded slot would hang
	// the Cleanup Shutdown (and fail the test there), but check
	// directly as well.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := srv.inflightN
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflightN = %d after inject-after-stop, want 0", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeMultiEngine runs both front doors against an EnginePerShard
// system: submissions are injected on the owning shard's engine, the
// stream transport partitions coalesced batches by shard, and
// whole-cluster reads (stats) still work through the barrier.
func TestServeMultiEngine(t *testing.T) {
	_, client, sc := newTestStreamServer(t,
		clockwork.Config{Workers: 2, Shards: 2, EnginePerShard: true, ExactTiming: true},
		Options{Speed: 1000})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const models = 4
	for i := 0; i < models; i++ {
		if err := client.RegisterModel(ctx, fmt.Sprintf("m%d", i), "resnet50_v1b"); err != nil {
			t.Fatalf("RegisterModel: %v", err)
		}
	}

	// HTTP path.
	res, err := client.Infer(ctx, clockwork.Request{Model: "m0", SLO: time.Second})
	if err != nil || !res.Success {
		t.Fatalf("HTTP infer on multi-engine system: %+v, %v", res, err)
	}

	// Stream path, concurrent across models so coalesced batches mix
	// shards.
	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]clockwork.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sc.Infer(ctx, clockwork.Request{
				Model: fmt.Sprintf("m%d", i%models), SLO: time.Second})
		}(i)
	}
	wg.Wait()
	succeeded := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("stream infer %d: %v", i, errs[i])
		}
		if results[i].Success {
			succeeded++
		}
	}
	if succeeded == 0 {
		t.Fatal("no stream infer succeeded on the multi-engine system")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Shards != 2 || st.Requests < n {
		t.Fatalf("Stats = %+v", st)
	}
}
