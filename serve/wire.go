package serve

import (
	"time"

	"clockwork"
)

// This file is the HTTP wire schema, shared by Server and Client so the
// two cannot drift. Durations travel as integer nanoseconds (Go's
// native time.Duration JSON encoding); failure reasons travel twice —
// as the human-readable string and as the numeric Reason code — so
// clients round-trip the typed Reason without parsing words.

// InferRequest is the POST /v1/infer body. It mirrors
// clockwork.Request field for field (minus the in-process callback).
type InferRequest struct {
	Model        string        `json:"model"`
	SLO          time.Duration `json:"slo_ns"`
	Priority     int           `json:"priority,omitempty"`
	Tenant       string        `json:"tenant,omitempty"`
	MaxBatchSize int           `json:"max_batch_size,omitempty"`
}

// InferResponse is the POST /v1/infer response body, mirroring
// clockwork.Result. Latency is the engine-observed (virtual-clock)
// end-to-end latency, the figure SLO conformance is judged by.
type InferResponse struct {
	RequestID  uint64        `json:"request_id"`
	Model      string        `json:"model"`
	Tenant     string        `json:"tenant,omitempty"`
	Success    bool          `json:"success"`
	Reason     string        `json:"reason,omitempty"`
	ReasonCode uint8         `json:"reason_code,omitempty"`
	Latency    time.Duration `json:"latency_ns"`
	Batch      int           `json:"batch,omitempty"`
	ColdStart  bool          `json:"cold_start,omitempty"`
}

// Result converts the wire form back to the public Result type.
func (r InferResponse) Result() clockwork.Result {
	return clockwork.Result{
		RequestID: r.RequestID,
		Model:     r.Model,
		Tenant:    r.Tenant,
		Success:   r.Success,
		Reason:    clockwork.Reason(r.ReasonCode),
		Latency:   r.Latency,
		Batch:     r.Batch,
		ColdStart: r.ColdStart,
	}
}

// RegisterRequest is the POST /v1/models body. With Copies == 0 it
// registers one instance named Instance; with Copies > 0 it registers
// Copies instances named "<Instance>#0" … (the RegisterCopies pattern).
type RegisterRequest struct {
	// Instance is the serving name (or base name, with Copies > 0).
	Instance string `json:"instance"`
	// Zoo names the embedded catalogue entry to instantiate.
	Zoo    string `json:"zoo"`
	Copies int    `json:"copies,omitempty"`
}

// RegisterResponse lists the instance names actually registered.
type RegisterResponse struct {
	Instances []string `json:"instances"`
}

// ModelsResponse is the GET /v1/models body: the registered instance
// names in registration order.
type ModelsResponse struct {
	Models []string `json:"models"`
}

// WorkerRequest addresses one worker for drain/fail.
type WorkerRequest struct {
	ID int `json:"id"`
}

// WorkerResponse reports a worker operation's subject.
type WorkerResponse struct {
	ID int `json:"id"`
	// State is the worker's lifecycle state after the operation
	// ("active", "draining", "failed").
	State string `json:"state,omitempty"`
}

// RebalanceResponse reports one manual rebalance pass.
type RebalanceResponse struct {
	Migrated int `json:"migrated"`
}

// ShardStatsEntry is one shard's outcome counters.
type ShardStatsEntry struct {
	Shard int `json:"shard"`
	clockwork.ShardStats
}

// ShardStatsResponse is the GET /v1/admin/shards body.
type ShardStatsResponse struct {
	Shards     []ShardStatsEntry `json:"shards"`
	Migrations uint64            `json:"migrations"`
}

// StatsResponse is the GET /v1/stats body: the system Summary plus
// serving-plane facts.
type StatsResponse struct {
	clockwork.Summary
	// VirtualNow is the engine's current virtual instant; Uptime is the
	// daemon's wall-clock age. Their ratio approaches the speed
	// multiplier on an idle system.
	VirtualNow time.Duration `json:"virtual_now_ns"`
	Uptime     time.Duration `json:"uptime_ns"`
	Speed      float64       `json:"speed"`
	Workers    int           `json:"workers"`
	Shards     int           `json:"shards"`
	Models     int           `json:"models"`
}

// SnapshotResponse is the POST /v1/admin/snapshot body: where the
// snapshot landed and what it captured.
type SnapshotResponse struct {
	Path string `json:"path"`
	// Seq is the journal sequence the snapshot covers up to (its marker
	// record); Step and VirtualTime stamp the capture's engine position.
	Seq         uint64        `json:"seq"`
	Step        uint64        `json:"step"`
	VirtualTime time.Duration `json:"virtual_time_ns"`
	Bytes       int64         `json:"bytes"`
	Models      int           `json:"models"`
	Workers     int           `json:"workers"`
	// PrunedSegments counts segments deleted under -journal-retain
	// snapshot (0 under the default retain-all).
	PrunedSegments int `json:"pruned_segments,omitempty"`
}

// JournalStatusResponse is the GET /v1/admin/journal body — the same
// gauges /metrics exposes, as JSON.
type JournalStatusResponse struct {
	Dir      string `json:"dir"`
	Epoch    int    `json:"epoch"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	Records  uint64 `json:"records"`
	Infers   uint64 `json:"infers"`
	Acks     uint64 `json:"acks"`
	Fsync    string `json:"fsync"`
	// UnsyncedBytes and FsyncLag report machine-crash exposure: bytes
	// in the kernel but not yet on stable storage, and for how long.
	UnsyncedBytes    int64         `json:"unsynced_bytes"`
	FsyncLag         time.Duration `json:"fsync_lag_ns"`
	Snapshots        uint64        `json:"snapshots"`
	LastSnapshotPath string        `json:"last_snapshot_path,omitempty"`
	LastSnapshotSeq  uint64        `json:"last_snapshot_seq,omitempty"`
	// LastSnapshotAge is negative before the first snapshot.
	LastSnapshotAge time.Duration `json:"last_snapshot_age_ns"`
	Failed          bool          `json:"failed,omitempty"`
	Error           string        `json:"error,omitempty"`
}

// AutoscalerStatusResponse is the GET /v1/admin/autoscaler body (also
// returned by POST): the closed loop's live state from the server's
// lock-free mirrors.
type AutoscalerStatusResponse struct {
	// Enabled reports whether the loop is evaluating (it can be paused
	// via POST without tearing the ticker down).
	Enabled bool `json:"enabled"`
	// Window is the admission window currently in force, bounded by
	// [MinWindow, MaxWindow]; MinWorkers/MaxWorkers bound worker
	// scaling (equal bounds = window-only mode).
	Window     int           `json:"window"`
	MinWindow  int           `json:"min_window"`
	MaxWindow  int           `json:"max_window"`
	MinWorkers int           `json:"min_workers"`
	MaxWorkers int           `json:"max_workers"`
	Period     time.Duration `json:"period_ns"`
	// Ticks counts control periods evaluated; Decisions how many of
	// them moved anything.
	Ticks          uint64 `json:"ticks"`
	Decisions      uint64 `json:"decisions"`
	WorkersAdded   uint64 `json:"workers_added"`
	WorkersDrained uint64 `json:"workers_drained"`
	// ShedTotal counts lifetime admission-window rejections across
	// both transports.
	ShedTotal  uint64 `json:"shed_total"`
	LastReason string `json:"last_reason,omitempty"`
}

// AutoscalerUpdateRequest is the POST /v1/admin/autoscaler body. Nil
// fields are left unchanged: {"enabled":false} pauses the loop,
// {"window":256} force-sets the window (clamped to the configured
// bounds, journaled like an automatic decision).
type AutoscalerUpdateRequest struct {
	Enabled *bool `json:"enabled,omitempty"`
	Window  *int  `json:"window,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable tag clients map back to the
	// typed clockwork errors (see codeToError / errToCode).
	Code string `json:"code"`
}
