//go:build race

package serve

// Reduced end-to-end volume under the race detector; see
// norace_test.go.
const e2eRequests = 12_000
