package serve

import (
	"context"
	"testing"
	"time"

	"clockwork"
)

// Allocation ratchets: hard ceilings on steady-state allocs per request
// for the two hot paths this package owns. These run as ordinary tests
// (CI runs them on every push), so a regression that re-introduces
// per-request garbage fails the build instead of silently eroding the
// engine floor. The ceilings are set a small margin above the measured
// steady state (0 allocs for both paths) to absorb runtime noise —
// background driver pacing, GC bookkeeping — not to leave room for new
// per-request allocations.
const (
	// liveAllocCeiling bounds one Inject → Wait → Release round trip on
	// the live engine (measured: 0 allocs/op; ISSUE-10 target ≤ 12).
	liveAllocCeiling = 4.0
	// streamAllocCeiling bounds one sequential stream-transport round
	// trip, client and server included (measured: 2 allocs/op).
	streamAllocCeiling = 10.0
)

// TestAllocRatchetLiveRoundTrip pins the engine floor: submit on the
// live driver, wait for the outcome, release the handle. The lifecycle
// recycles requests, handles, actions and timers through free lists, so
// the steady state allocates nothing per request.
func TestAllocRatchetLiveRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ratchet skipped in -short")
	}
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	live := sys.StartLive(10_000)
	defer live.Stop()
	ctx := context.Background()

	var h clockwork.Handle
	var serr error
	submit := func() {
		h, serr = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	}
	fire := func() {
		if doErr := live.Do(submit); doErr != nil {
			t.Fatal(doErr)
		}
		if serr != nil {
			t.Fatal(serr)
		}
		if _, werr := h.Wait(ctx); werr != nil {
			t.Fatal(werr)
		}
		h.Release()
	}
	// Warm: model onto a GPU, pools populated, driver in steady state.
	for i := 0; i < 50; i++ {
		fire()
	}
	if avg := testing.AllocsPerRun(200, fire); avg > liveAllocCeiling {
		t.Fatalf("live round trip allocates %.1f objects/op, ratchet ceiling is %.1f", avg, liveAllocCeiling)
	}
}

// TestAllocRatchetStreamRoundTrip pins the stream transport: one
// sequential Infer over a loopback binary-frame connection, counting
// allocations across the whole process (server connection goroutines
// included — frames, calls, sinks and responses all pool).
func TestAllocRatchetStreamRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ratchet skipped in -short")
	}
	_, client, _ := newBenchStreamServer(t, 1, 1)
	ctx := context.Background()
	fire := func() {
		res, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("infer failed: %+v", res)
		}
	}
	for i := 0; i < 50; i++ {
		fire()
	}
	if avg := testing.AllocsPerRun(200, fire); avg > streamAllocCeiling {
		t.Fatalf("stream round trip allocates %.1f objects/op, ratchet ceiling is %.1f", avg, streamAllocCeiling)
	}
}
