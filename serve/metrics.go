package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"clockwork"
	"clockwork/trace"
)

// latencyQuantiles are the summary quantiles /metrics exposes.
var latencyQuantiles = []struct {
	label string
	p     float64
}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}, {"0.999", 99.9}, {"0.9999", 99.99}}

// handleMetrics renders GET /metrics in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the repo stays dependency-free.
// The whole scrape is snapshotted in one engine call, so every line
// reflects the same virtual instant.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var (
		st     StatsResponse
		shards []clockwork.ShardStats
		quants = make([]float64, len(latencyQuantiles))
		agg    trace.Aggregate
	)
	doErr := s.live.Do(func() {
		s.recNoop()
		s.fillStats(&st)
		for i := 0; i < s.sys.ShardCount(); i++ {
			if sb, err := s.sys.ShardStats(i); err == nil {
				shards = append(shards, sb)
			}
		}
		for i, q := range latencyQuantiles {
			quants[i] = s.sys.LatencyPercentile(q.p).Seconds()
		}
		// The flight recorder's merged aggregates ride the same engine
		// entry, so the stage decomposition, provenance table and outcome
		// counters all reflect one virtual instant.
		agg = s.flight.Aggregate()
	})
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("clockwork_requests_total", "Client requests with a final outcome.", st.Requests)
	counter("clockwork_succeeded_total", "Requests that executed and returned.", st.Succeeded)
	counter("clockwork_failed_total", "Requests with a failure outcome.", st.Failed)
	counter("clockwork_slo_misses_total", "Successful responses that exceeded their SLO.", st.SLOMisses)
	counter("clockwork_cancelled_total", "Requests rejected in advance by admission control.", st.Cancelled)
	counter("clockwork_rejected_total", "Worker-side schedule misses.", st.Rejected)
	counter("clockwork_cold_starts_total", "Requests whose model was not GPU-resident on arrival.", st.ColdStarts)
	gauge("clockwork_goodput_mean", "Within-SLO responses per virtual second over the run.", st.GoodputMean)
	gauge("clockwork_workers", "Workers ever added (drained and failed keep their IDs).", float64(st.Workers))
	gauge("clockwork_shards", "Scheduler shards.", float64(st.Shards))
	gauge("clockwork_models", "Registered model instances.", float64(st.Models))
	gauge("clockwork_virtual_time_seconds", "Engine virtual clock.", st.VirtualNow.Seconds())
	gauge("clockwork_uptime_seconds", "Daemon wall-clock age.", time.Since(s.started).Seconds())
	gauge("clockwork_speed", "Virtual-vs-wall clock multiplier.", s.live.Speed())

	if s.rec != nil {
		// Journal gauges come from the recorder's lock-free status
		// mirrors — same scrape, no extra engine call.
		js := s.rec.Status()
		counter("clockwork_journal_records_total", "Journal records appended this epoch.", js.Records)
		counter("clockwork_journal_infers_total", "Inference submissions journaled this epoch.", js.Infers)
		counter("clockwork_journal_acks_total", "Acknowledgements journaled this epoch.", js.Acks)
		counter("clockwork_journal_snapshots_total", "Snapshots taken this epoch.", js.Snapshots)
		gauge("clockwork_journal_epoch", "Journal epoch this daemon appends to.", float64(js.Epoch))
		gauge("clockwork_journal_segments", "Live write-ahead segments on disk.", float64(js.Segments))
		gauge("clockwork_journal_bytes", "Bytes appended to the journal this epoch.", float64(js.Bytes))
		gauge("clockwork_journal_unsynced_bytes", "Bytes written but not yet fsynced.", float64(js.UnsyncedBytes))
		gauge("clockwork_journal_fsync_lag_seconds", "Time since the last completed fsync while writes are pending.", js.FsyncLag.Seconds())
		snapAge := js.LastSnapshotAge.Seconds()
		if js.LastSnapshotAge < 0 {
			snapAge = -1
		}
		gauge("clockwork_journal_last_snapshot_age_seconds", "Wall-clock age of the last snapshot (-1 before the first).", snapAge)
		failed := 0.0
		if js.Failed {
			failed = 1
		}
		gauge("clockwork_journal_failed", "1 when the journal has latched a write error and stopped recording.", failed)
	}

	counter("clockwork_admission_shed_total", "Requests refused at the admission window (429 / overloaded frames).", s.shedTotal.Load())
	if s.asc != nil {
		// Autoscaler gauges come from the server's lock-free mirrors —
		// same scrape, no extra engine call.
		enabled := 0.0
		if s.ascEnabled.Load() {
			enabled = 1
		}
		gauge("clockwork_autoscaler_enabled", "1 while the closed-loop autoscaler is evaluating.", enabled)
		gauge("clockwork_autoscaler_window", "Admission window currently in force.", float64(s.ascWindow.Load()))
		counter("clockwork_autoscaler_ticks_total", "Control periods evaluated.", s.ascTicks.Load())
		counter("clockwork_autoscaler_decisions_total", "Control periods whose decision moved anything.", s.ascMoves.Load())
		counter("clockwork_autoscaler_workers_added_total", "Workers added by the closed loop.", s.ascAdded.Load())
		counter("clockwork_autoscaler_workers_drained_total", "Workers drained by the closed loop.", s.ascDrained.Load())
	}

	fmt.Fprintf(&b, "# HELP clockwork_latency_seconds Client-observed latency (virtual clock).\n")
	fmt.Fprintf(&b, "# TYPE clockwork_latency_seconds summary\n")
	for i, q := range latencyQuantiles {
		fmt.Fprintf(&b, "clockwork_latency_seconds{quantile=%q} %g\n", q.label, quants[i])
	}
	fmt.Fprintf(&b, "clockwork_latency_seconds_count %d\n", st.Requests)

	fmt.Fprintf(&b, "# HELP clockwork_shard_requests_total Requests attributed to each shard.\n")
	fmt.Fprintf(&b, "# TYPE clockwork_shard_requests_total counter\n")
	for i, sb := range shards {
		fmt.Fprintf(&b, "clockwork_shard_requests_total{shard=\"%d\"} %d\n", i, sb.Requests)
	}
	fmt.Fprintf(&b, "# HELP clockwork_shard_within_slo_total Within-SLO successes per shard.\n")
	fmt.Fprintf(&b, "# TYPE clockwork_shard_within_slo_total counter\n")
	for i, sb := range shards {
		fmt.Fprintf(&b, "clockwork_shard_within_slo_total{shard=\"%d\"} %d\n", i, sb.WithinSLO)
	}

	s.writeTraceMetrics(&b, agg)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// writeTraceMetrics renders the flight recorder's aggregate layer: the
// per-stage latency decomposition and prediction-error summaries, the
// SLO-miss provenance table, and the recorder's own volume counters.
// agg was captured inside the same engine entry as the rest of the
// scrape. The aggregates are fed by every finalized request — not just
// the sampled ones — so these series are exact, independent of the
// trace sample rate.
func (s *Server) writeTraceMetrics(b *strings.Builder, agg trace.Aggregate) {
	enabled := 0.0
	if s.flight.Enabled() {
		enabled = 1
	}
	fmt.Fprintf(b, "# HELP clockwork_trace_enabled 1 while the flight recorder is recording.\n# TYPE clockwork_trace_enabled gauge\nclockwork_trace_enabled %g\n", enabled)
	fmt.Fprintf(b, "# HELP clockwork_trace_sample_rate Head-based trace sampling probability.\n# TYPE clockwork_trace_sample_rate gauge\nclockwork_trace_sample_rate %g\n", s.flight.SampleRate())
	fmt.Fprintf(b, "# HELP clockwork_trace_finalized_total Requests whose lifecycle the recorder finalized.\n# TYPE clockwork_trace_finalized_total counter\nclockwork_trace_finalized_total %d\n", agg.Stats.Finalized)
	fmt.Fprintf(b, "# HELP clockwork_trace_sampled_total Finalized requests retained in the completed-trace rings.\n# TYPE clockwork_trace_sampled_total counter\nclockwork_trace_sampled_total %d\n", agg.Stats.SampledKept)
	fmt.Fprintf(b, "# HELP clockwork_trace_violations_total SLO violations the recorder attributed a cause to.\n# TYPE clockwork_trace_violations_total counter\nclockwork_trace_violations_total %d\n", agg.Stats.Violations)

	fmt.Fprintf(b, "# HELP clockwork_stage_seconds Per-request latency decomposition by lifecycle stage (virtual clock).\n")
	fmt.Fprintf(b, "# TYPE clockwork_stage_seconds summary\n")
	for _, st := range trace.Stages {
		h := agg.Stage[st]
		if h == nil {
			continue
		}
		for _, q := range latencyQuantiles {
			fmt.Fprintf(b, "clockwork_stage_seconds{stage=%q,quantile=%q} %g\n", st, q.label, h.Percentile(q.p).Seconds())
		}
		fmt.Fprintf(b, "clockwork_stage_seconds_sum{stage=%q} %g\n", st, h.Sum())
		fmt.Fprintf(b, "clockwork_stage_seconds_count{stage=%q} %d\n", st, h.Count())
	}

	fmt.Fprintf(b, "# HELP clockwork_predict_error_seconds Absolute predicted-vs-actual execution time error.\n")
	fmt.Fprintf(b, "# TYPE clockwork_predict_error_seconds summary\n")
	if h := agg.PredErr; h != nil {
		for _, q := range latencyQuantiles {
			fmt.Fprintf(b, "clockwork_predict_error_seconds{quantile=%q} %g\n", q.label, h.Percentile(q.p).Seconds())
		}
		fmt.Fprintf(b, "clockwork_predict_error_seconds_sum %g\n", h.Sum())
		fmt.Fprintf(b, "clockwork_predict_error_seconds_count %d\n", h.Count())
	}

	fmt.Fprintf(b, "# HELP clockwork_slo_miss_provenance_total SLO violations, cancels and sheds attributed to a cause, per model and tenant.\n")
	fmt.Fprintf(b, "# TYPE clockwork_slo_miss_provenance_total counter\n")
	for _, p := range agg.Provenance {
		fmt.Fprintf(b, "clockwork_slo_miss_provenance_total{cause=%q,model=%q,tenant=%q} %d\n", p.Cause, p.Model, p.Tenant, p.Count)
	}
	if shed := agg.Stats.Shed; shed > 0 {
		// Admission sheds never reach the engine, so they carry no model
		// or tenant; they are still lost work the provenance table must
		// not hide.
		fmt.Fprintf(b, "clockwork_slo_miss_provenance_total{cause=%q,model=\"-\",tenant=\"-\"} %d\n", trace.CauseAdmissionShed, shed)
	}
}
