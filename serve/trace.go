package serve

// Flight-recorder admin plane. GET /v1/admin/trace dumps every retained
// trace as Chrome trace-event / Perfetto JSON (open it at
// https://ui.perfetto.dev); POST /v1/admin/trace flips recording on or
// off and moves the sample rate at runtime. The controls are atomics on
// the recorder — no engine call — while the dump snapshots the rings
// under the same single-virtual-instant engine entry every other
// consistent read uses (Live.Do; a stop-the-world barrier on a
// multi-engine system).

import (
	"errors"
	"net/http"

	"clockwork/trace"
)

// TraceControlRequest is the POST /v1/admin/trace body. Both fields are
// optional; omitted fields leave the current setting untouched, so an
// empty body is a pure status read.
type TraceControlRequest struct {
	Enabled    *bool    `json:"enabled,omitempty"`
	SampleRate *float64 `json:"sample_rate,omitempty"`
}

// TraceStatusResponse answers POST /v1/admin/trace with the settings
// now in force plus the recorder's lifetime counters.
type TraceStatusResponse struct {
	Enabled    bool        `json:"enabled"`
	SampleRate float64     `json:"sample_rate"`
	Stats      trace.Stats `json:"stats"`
}

// handleTraceGet (GET /v1/admin/trace) exports the flight recorder's
// retained traces as Perfetto-loadable JSON. The ring snapshot runs
// engine-side so every span reflects one virtual instant; the wall
// correlation comes from the live driver's origin, letting the consumer
// align virtual timestamps with external logs.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	var snap *trace.Snapshot
	doErr := s.live.Do(func() {
		s.recNoop()
		snap = s.flight.Snapshot()
		snap.VirtualNow = s.sys.Now()
	})
	if doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	if wall, virtual, ok := s.live.WallOrigin(); ok {
		snap.WallOrigin = wall
		snap.VirtualOrigin = virtual
	}
	snap.Speed = s.live.Speed()
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WritePerfetto(w, snap); err != nil {
		// The status line is already on the wire; nothing to do but
		// drop the connection mid-body.
		return
	}
}

// handleTracePost (POST /v1/admin/trace) adjusts recording at runtime.
// The settings live in atomics read by the engine-side hooks, so no
// engine injection is needed and the change takes effect on the next
// request the hooks see.
func (s *Server) handleTracePost(w http.ResponseWriter, r *http.Request) {
	var req TraceControlRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.SampleRate != nil {
		if *req.SampleRate < 0 || *req.SampleRate > 1 {
			writeError(w, http.StatusBadRequest, "invalid_request",
				errors.New("sample_rate must be in [0, 1]"))
			return
		}
		s.flight.SetSampleRate(*req.SampleRate)
	}
	if req.Enabled != nil {
		s.flight.SetEnabled(*req.Enabled)
	}
	// The per-shard counters are engine-side state; read them under the
	// same consistent entry the dump uses.
	var st trace.Stats
	if doErr := s.live.Do(func() { s.recNoop(); st = s.flight.Aggregate().Stats }); doErr != nil {
		writeError(w, http.StatusServiceUnavailable, "stopped", doErr)
		return
	}
	writeJSON(w, TraceStatusResponse{
		Enabled:    s.flight.Enabled(),
		SampleRate: s.flight.SampleRate(),
		Stats:      st,
	})
}
