package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clockwork"
	"clockwork/serve/stream"
)

// StreamOptions configures a StreamClient.
type StreamOptions struct {
	// Conns is how many TCP connections to multiplex requests over
	// (round-robin). One connection already carries any number of
	// in-flight requests; more connections spread the encode/decode
	// work across server reader goroutines. Default 1.
	Conns int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
}

// StreamClient is the fast-path client of a clockworkd server: the
// same Request/Result contract as Client (including the typed error
// taxonomy — errors.Is against clockwork.ErrUnknownModel etc. works
// identically), spoken over the binary stream transport instead of
// HTTP/JSON. Many goroutines may call Infer concurrently; requests are
// multiplexed over the configured connections and correlated by ID,
// and SubmitBatch pipelines a whole batch through one write.
//
// There is no dedicated reader goroutine: waiters elect one of
// themselves to read the socket and dispatch responses (the token
// passes when the elected reader's own call completes). A sequential
// caller therefore reads its own response directly — no goroutine
// handoff on the critical path.
type StreamClient struct {
	conns []*clientStream
	next  atomic.Uint64
}

// DialStream connects to a clockworkd stream listener ("host:port").
func DialStream(addr string, opts StreamOptions) (*StreamClient, error) {
	n := opts.Conns
	if n <= 0 {
		n = 1
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &StreamClient{conns: make([]*clientStream, 0, n)}
	for i := 0; i < n; i++ {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("serve: dialing stream %s: %w", addr, err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		c.conns = append(c.conns, newClientStream(nc))
	}
	return c, nil
}

// Close closes every connection. In-flight calls fail with
// ErrStreamClosed.
func (c *StreamClient) Close() error {
	for _, cs := range c.conns {
		cs.fail(ErrStreamClosed)
	}
	return nil
}

func (c *StreamClient) pick() *clientStream {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// Infer submits one inference over the stream and blocks until its
// outcome returns. req.OnResult is ignored (completion is the response
// frame itself). A ctx cancellation abandons the wait, not the
// request: the server still runs it to its outcome.
func (c *StreamClient) Infer(ctx context.Context, req clockwork.Request) (clockwork.Result, error) {
	cs := c.pick()
	call, corr, err := cs.start(req.Model, req.Tenant)
	if err != nil {
		return clockwork.Result{}, err
	}
	if err := cs.writeInfer(corr, &req); err != nil {
		cs.abandon(corr)
		return clockwork.Result{}, err
	}
	return cs.await(ctx, call, corr)
}

// BatchOutcome is one request's outcome within a SubmitBatch.
type BatchOutcome struct {
	Result clockwork.Result
	Err    error
}

// SubmitBatch pipelines a batch of requests through one connection in
// one coalesced write and waits for all their outcomes. Outcomes are
// positional: out[i] answers reqs[i]. The call-level error is nil
// unless the transport itself failed before any request was written.
func (c *StreamClient) SubmitBatch(ctx context.Context, reqs []clockwork.Request) ([]BatchOutcome, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	cs := c.pick()
	calls := make([]*streamCall, len(reqs))
	corrs := make([]uint64, len(reqs))
	for i, req := range reqs {
		call, corr, err := cs.start(req.Model, req.Tenant)
		if err != nil {
			for j := 0; j < i; j++ {
				cs.abandon(corrs[j])
			}
			return nil, err
		}
		calls[i], corrs[i] = call, corr
	}
	cs.wmu.Lock()
	var werr error
	for i, req := range reqs {
		if werr = cs.enc.Infer(&stream.InferFrame{
			Corr:     corrs[i],
			SLO:      int64(req.SLO),
			Priority: int64(req.Priority),
			MaxBatch: int64(req.MaxBatchSize),
			Model:    req.Model,
			Tenant:   req.Tenant,
		}); werr != nil {
			break
		}
	}
	if werr == nil {
		werr = cs.enc.Flush()
	}
	cs.wmu.Unlock()
	if werr != nil {
		for _, corr := range corrs {
			cs.abandon(corr)
		}
		return nil, fmt.Errorf("%w: %v", ErrStreamClosed, werr)
	}
	out := make([]BatchOutcome, len(reqs))
	for i := range calls {
		out[i].Result, out[i].Err = cs.await(ctx, calls[i], corrs[i])
	}
	return out, nil
}

// Models lists the registered instance names over the stream.
func (c *StreamClient) Models(ctx context.Context) ([]string, error) {
	cs := c.pick()
	call, corr, err := cs.start("", "")
	if err != nil {
		return nil, err
	}
	cs.wmu.Lock()
	werr := cs.enc.Models(corr)
	if werr == nil {
		werr = cs.enc.Flush()
	}
	cs.wmu.Unlock()
	if werr != nil {
		cs.abandon(corr)
		return nil, fmt.Errorf("%w: %v", ErrStreamClosed, werr)
	}
	if _, err := cs.await(ctx, call, corr); err != nil {
		return nil, err
	}
	// await pools the call only on the result path; Models outcomes
	// carry their payload in call.models and are not pooled.
	models := call.models
	callPool.Put(call)
	return models, nil
}

// ---- connection internals ----

// streamCall is one in-flight correlated exchange. The done channel
// has capacity 1 and is signalled by send (not close), so pooled calls
// can be reused once their waiter has drained the signal. A call
// abandoned mid-delivery is NOT pooled — the dispatching reader may
// still be writing to it.
type streamCall struct {
	done    chan struct{}
	model   string
	tenant  string
	res     clockwork.Result
	err     error
	models  []string
	hasList bool
}

var callPool = sync.Pool{
	New: func() any { return &streamCall{done: make(chan struct{}, 1)} },
}

type clientStream struct {
	c   net.Conn
	enc *stream.Encoder
	wmu sync.Mutex // serialises encode+flush

	// readSem is the reader-election token (capacity 1): whoever can
	// send into it owns the decoder and the socket's read side until
	// they release it. dec is only touched by the token holder.
	readSem chan struct{}
	dec     *stream.Decoder

	pmu     sync.Mutex
	pending map[uint64]*streamCall
	corr    uint64
	dead    error // set once the conn fails; start refuses thereafter
}

func newClientStream(c net.Conn) *clientStream {
	return &clientStream{
		c:       c,
		enc:     stream.NewEncoder(c),
		readSem: make(chan struct{}, 1),
		dec:     stream.NewDecoder(c),
		pending: make(map[uint64]*streamCall),
	}
}

// start registers a new correlated call.
func (cs *clientStream) start(model, tenant string) (*streamCall, uint64, error) {
	call := callPool.Get().(*streamCall)
	call.model, call.tenant = model, tenant
	call.res, call.err = clockwork.Result{}, nil
	call.models, call.hasList = nil, false
	cs.pmu.Lock()
	if cs.dead != nil {
		err := cs.dead
		cs.pmu.Unlock()
		callPool.Put(call)
		return nil, 0, fmt.Errorf("%w: %v", ErrStreamClosed, err)
	}
	cs.corr++
	corr := cs.corr
	cs.pending[corr] = call
	cs.pmu.Unlock()
	return call, corr, nil
}

func (cs *clientStream) writeInfer(corr uint64, req *clockwork.Request) error {
	cs.wmu.Lock()
	err := cs.enc.Infer(&stream.InferFrame{
		Corr:     corr,
		SLO:      int64(req.SLO),
		Priority: int64(req.Priority),
		MaxBatch: int64(req.MaxBatchSize),
		Model:    req.Model,
		Tenant:   req.Tenant,
	})
	if err == nil {
		err = cs.enc.Flush()
	}
	cs.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStreamClosed, err)
	}
	return nil
}

// await blocks for the call's outcome, serving as the connection's
// reader whenever the token is free: it reads frames and dispatches
// them (to itself or to other waiters) until its own outcome lands.
// On success the call returns to the pool; on ctx cancellation it is
// deregistered (and pooled only if no reader had claimed it).
func (cs *clientStream) await(ctx context.Context, call *streamCall, corr uint64) (clockwork.Result, error) {
	if done := ctx.Done(); done != nil {
		stop := context.AfterFunc(ctx, func() {
			// Abort whoever is blocked reading (possibly this goroutine)
			// so the cancelled waiter can leave; readers treat the
			// timeout as a retry signal, not a connection failure.
			_ = cs.c.SetReadDeadline(time.Now())
		})
		defer stop()
	}
	for {
		select {
		case <-call.done:
			res, err := call.res, call.err
			if !call.hasList {
				callPool.Put(call)
			}
			return res, err
		case <-ctx.Done():
			cs.abandon(corr)
			return clockwork.Result{}, ctx.Err()
		case cs.readSem <- struct{}{}:
			// Elected reader. The outcome may have landed between the
			// last check and the election — look again before blocking
			// on the socket.
			select {
			case <-call.done:
				<-cs.readSem
				res, err := call.res, call.err
				if !call.hasList {
					callPool.Put(call)
				}
				return res, err
			default:
			}
			err := cs.readFrame()
			<-cs.readSem
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					// A waiter's ctx fired a read-deadline poke; clear it
					// and re-loop (our own ctx case handles our exit).
					_ = cs.c.SetReadDeadline(time.Time{})
					continue
				}
				cs.fail(err)
			}
		}
	}
}

// abandon deregisters corr after a write failure or ctx cancellation.
// If a reader already claimed the call, it is left to the garbage
// collector — pooling it would race the delivery.
func (cs *clientStream) abandon(corr uint64) {
	cs.pmu.Lock()
	call, ok := cs.pending[corr]
	if ok {
		delete(cs.pending, corr)
	}
	cs.pmu.Unlock()
	if ok {
		// Drain a delivery that slipped in between claim and now.
		select {
		case <-call.done:
		default:
		}
		callPool.Put(call)
	}
}

// take claims the call registered under corr, if any.
func (cs *clientStream) take(corr uint64) *streamCall {
	cs.pmu.Lock()
	call, ok := cs.pending[corr]
	if ok {
		delete(cs.pending, corr)
	}
	cs.pmu.Unlock()
	if !ok {
		return nil
	}
	return call
}

// readFrame reads and dispatches exactly one frame. Caller must hold
// the read token.
func (cs *clientStream) readFrame() error {
	typ, p, err := cs.dec.Next()
	if err != nil {
		return err
	}
	switch typ {
	case stream.TypeResult:
		var f stream.ResultFrame
		if err := stream.DecodeResult(p, &f); err != nil {
			return err
		}
		if call := cs.take(f.Corr); call != nil {
			call.res = clockwork.Result{
				RequestID: f.RequestID,
				Model:     call.model,
				Tenant:    call.tenant,
				Success:   f.Success,
				Reason:    clockwork.Reason(f.Reason),
				Latency:   time.Duration(f.Latency),
				Batch:     int(f.Batch),
				ColdStart: f.ColdStart,
			}
			call.done <- struct{}{}
		}
		return nil
	case stream.TypeError:
		var f stream.ErrorFrame
		if err := stream.DecodeError(p, &f); err != nil {
			return err
		}
		if call := cs.take(f.Corr); call != nil {
			status, code := wireToCode(f.Code)
			call.err = &APIError{Status: status, Code: code, Message: f.Message}
			call.done <- struct{}{}
		}
		return nil
	case stream.TypeModelList:
		var f stream.ModelListFrame
		if err := cs.dec.DecodeModelList(p, &f); err != nil {
			return err
		}
		if call := cs.take(f.Corr); call != nil {
			call.models = append([]string(nil), f.Models...)
			call.hasList = true
			call.done <- struct{}{}
		}
		return nil
	default:
		return stream.ErrUnknownFrameType
	}
}

// fail marks the connection dead, fails every pending call with a
// typed transport error, and closes the socket. Idempotent.
func (cs *clientStream) fail(cause error) {
	cs.pmu.Lock()
	if cs.dead == nil {
		cs.dead = cause
	}
	pending := cs.pending
	cs.pending = make(map[uint64]*streamCall)
	cs.pmu.Unlock()
	for _, call := range pending {
		call.err = fmt.Errorf("%w: %v", ErrStreamClosed, cause)
		call.done <- struct{}{}
	}
	cs.c.Close()
}
