// Package clockwork is a Go reproduction of "Serving DNNs like
// Clockwork: Performance Predictability from the Bottom Up" (Gujarati et
// al., OSDI 2020): a distributed model serving system that consolidates
// every performance-relevant choice in a central controller so that DNN
// inference's natural determinism survives all the way to the client,
// yielding tail latencies that track SLOs at the 99.99th+ percentile.
//
// The hardware substrate (GPU execution, PCIe transfers, cluster
// network) is simulated and calibrated against the paper's published
// profiles (Appendix A), and the whole system runs on a deterministic
// virtual clock: an 8-hour trace replays in seconds, bit-identically for
// a given seed. See ARCHITECTURE.md for the system's structure and
// request lifecycle, DESIGN.md for the substitution rationale, and
// EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1})
//	if err != nil {
//		log.Fatal(err)
//	}
//	sys.RegisterModel("my-resnet", "resnet50_v1b")
//	sys.SubmitRequest(clockwork.Request{
//		Model: "my-resnet",
//		SLO:   100 * time.Millisecond,
//	}, func(r clockwork.Result) {
//		fmt.Println(r.Success, r.Reason, r.Latency)
//	})
//	sys.RunFor(time.Second)
//
// Requests carry per-request options — Priority, Tenant, and a batch
// cap (MaxBatchSize) — and report typed outcomes: Result.Reason is a
// Reason enum (ReasonCancelled, ReasonRejected, ReasonTimeout, …), not
// a string. SubmitRequest returns a Handle for client-side inspection
// and best-effort cancellation.
//
// # Policies
//
// Serving policies are resolved by name through a registry. The paper's
// scheduler ("clockwork"), its ablation variant
// ("clockwork-oldest-load"), and the two §6.1 baselines ("clipper",
// "infaas") self-register; external schedulers plug in with
// RegisterPolicy without touching New. Unknown policy names make New
// return an error that lists everything registered.
//
// # Sharded control plane
//
// The paper names its centralized controller as the scaling bottleneck
// (§8). Config{Shards: N} partitions the control plane into N
// scheduler shards, each owning a disjoint slice of the workers and a
// disjoint subset of the models (consistent hash of the name), with a
// periodic rebalancer migrating models — queued requests included,
// losslessly — between shards when demand skews. Shards defaults to 1,
// which is bit-identical to the unsharded system; at 16 shards and 16k
// models the per-request scheduler cost drops ≈9× (EXPERIMENTS.md,
// "scale"). ShardOf, ShardStats, MigrateModel and Rebalance expose the
// shard control plane.
//
// # Runtime control plane
//
// A running System can be reconfigured live: AddWorker scales out,
// DrainWorker stops scheduling onto a worker while in-flight work
// finishes, FailWorker simulates an abrupt worker loss, and
// UnregisterModel retires a model. ModelStats and TenantStats expose
// per-model and per-tenant goodput/latency/cold-start counters, and
// InjectDisturbance reproduces the paper's §4.3 external slowdowns.
// Every control-plane call routes to the shard owning the target.
//
// # Live serving
//
// StartLive paces the engine against the wall clock (at any speed
// multiple) so the same System serves real traffic: concurrent
// goroutines funnel work onto the engine goroutine with Live.Inject or
// Live.Do, block for completion with Handle.Wait (or a per-request
// Request.OnResult callback, which fires on the engine goroutine), and
// stop the clock with Live.Stop. Package clockwork/serve builds the
// network front door on these primitives — an HTTP/JSON server
// (cmd/clockworkd), a typed client, and a wall-clock load generator
// (cmd/clockwork-loadgen). The virtual-clock experiment paths never
// touch wall time; see ARCHITECTURE.md, "Serving plane".
package clockwork
