package clockwork

import (
	"errors"
	"sync"

	"clockwork/internal/simclock"
)

// This file is the bridge between the deterministic virtual-clock world
// and live serving: StartLive paces a System's engine against the wall
// clock on a dedicated goroutine, and Live is the handle concurrent
// callers use to get onto that goroutine. The determinism boundary is
// exactly here — everything below the engine is the same event-driven
// machinery the simulations run, and the only nondeterminism a live
// system sees is the arrival timing of injected work (see
// ARCHITECTURE.md, "Serving plane").

// ErrLiveStopped is returned by Live.Do when the driver has stopped
// before the submitted function could run.
var ErrLiveStopped = errors.New("clockwork: live driver stopped")

// Live paces a System against the wall clock so it can serve real
// traffic. All engine-side work — submissions, control-plane calls,
// metrics reads — must be funnelled through Inject or Do; the driver
// serialises everything on one goroutine, preserving the engine's
// single-threaded discipline without any locks in the engine itself.
//
// At most one Live driver may be active per System, and while it runs
// the System's RunFor/RunUntil must not be called.
type Live struct {
	sys   *System
	drv   *simclock.RealtimeDriver
	speed float64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartLive starts pacing the system's engine against the wall clock on
// a new goroutine and returns the live handle. speed scales virtual
// time against wall time: 1.0 serves in real time, 100.0 runs the
// virtual clock a hundredfold faster (speeds <= 0 mean 1.0). The driver
// runs until Stop.
func (s *System) StartLive(speed float64) *Live {
	if speed <= 0 {
		speed = 1.0
	}
	l := &Live{
		sys:   s,
		drv:   simclock.NewRealtimeDriver(s.cluster.Eng, speed),
		speed: speed,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		l.drv.Run(l.stop)
		close(l.done)
	}()
	return l
}

// Speed returns the effective virtual-vs-wall speed multiplier.
func (l *Live) Speed() float64 { return l.speed }

// System returns the system this driver paces.
func (l *Live) System() *System { return l.sys }

// Inject schedules fn onto the engine goroutine "as soon as possible"
// (at the engine's current virtual instant) and returns without waiting
// for it to run. Safe from any goroutine, including engine-side
// callbacks (an OnResult handler may Inject a follow-up submission; it
// runs on a later driver turn). After Stop, Inject is a silent no-op.
func (l *Live) Inject(fn func()) { l.drv.Inject(fn) }

// Do runs fn on the engine goroutine and blocks until it has completed
// — the synchronous companion to Inject, used for submissions and
// consistent metric snapshots. It returns ErrLiveStopped if the driver
// stopped before fn could run. Calling Do from inside an engine-side
// callback deadlocks; use plain function calls there (the caller is
// already on the engine goroutine).
func (l *Live) Do(fn func()) error {
	ran := make(chan struct{})
	l.drv.Inject(func() {
		fn()
		close(ran)
	})
	select {
	case <-ran:
		return nil
	case <-l.done:
		// The driver exited; the injected event may still be queued but
		// will never execute. Re-check once: fn may have run in the
		// driver's final steps.
		select {
		case <-ran:
			return nil
		default:
			return ErrLiveStopped
		}
	}
}

// Stop halts the wall-clock driver and waits for its goroutine to exit.
// Pending virtual events (in-flight requests, timers) are left in the
// engine — callers that need a clean drain should stop admitting work
// and wait for in-flight completions first, which is exactly what
// serve.Server.Shutdown does. Stop is idempotent and safe from any
// goroutine.
func (l *Live) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}
