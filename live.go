package clockwork

import (
	"errors"
	"sync"
	"time"

	"clockwork/internal/simclock"
)

// This file is the bridge between the deterministic virtual-clock world
// and live serving: StartLive paces a System's engine(s) against the
// wall clock on dedicated goroutines, and Live is the handle concurrent
// callers use to get onto those goroutines. The determinism boundary is
// exactly here — everything below the engines is the same event-driven
// machinery the simulations run, and the only nondeterminism a live
// system sees is the arrival timing of injected work (see
// ARCHITECTURE.md, "Serving plane").
//
// With Config.EnginePerShard the system runs one engine per control-
// plane shard, each paced by its own goroutine under a bounded-skew
// virtual-time sync protocol (simclock.MultiDriver). Live then offers
// shard-addressed injection (InjectOn) and turns Do into a
// stop-the-world barrier so whole-cluster reads and mutations still see
// quiescent state.

// ErrLiveStopped is returned by Live.Do when the driver has stopped
// before the submitted function could run.
var ErrLiveStopped = errors.New("clockwork: live driver stopped")

// Live paces a System against the wall clock so it can serve real
// traffic. All engine-side work — submissions, control-plane calls,
// metrics reads — must be funnelled through Inject/InjectOn or Do; the
// drivers serialise everything per engine goroutine, preserving each
// engine's single-threaded discipline without any locks in the engines
// themselves.
//
// At most one Live driver may be active per System, and while it runs
// the System's RunFor/RunUntil must not be called.
type Live struct {
	sys   *System
	drv   *simclock.RealtimeDriver // single-engine mode
	multi *simclock.MultiDriver    // engine-per-shard mode
	speed float64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartLive starts pacing the system's engine(s) against the wall clock
// and returns the live handle. speed scales virtual time against wall
// time: 1.0 serves in real time, 100.0 runs the virtual clock a
// hundredfold faster (speeds <= 0 mean 1.0). The driver runs until
// Stop.
//
// With Config.EnginePerShard each shard gets its own pacing goroutine;
// the shards' clocks stay within the bounded-skew window (Config
// .SkewBound, or the derived cross-shard interaction floor) of each
// other, and a wall-clock ticker drives the cross-shard rebalancer
// under a barrier.
func (s *System) StartLive(speed float64) *Live {
	if speed <= 0 {
		speed = 1.0
	}
	l := &Live{
		sys:   s,
		speed: speed,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	cl := s.cluster
	if !cl.EnginePerShard() {
		l.drv = simclock.NewRealtimeDriver(cl.Eng, speed)
		go func() {
			l.drv.Run(l.stop)
			close(l.done)
		}()
		return l
	}

	l.multi = simclock.NewMultiDriver(cl.Engines(), speed, s.liveLookahead(speed))
	// Cross-shard deliveries (submission forwards after a migration)
	// must be wired before any engine runs: the hook hands the event to
	// the destination shard's pacer, which clamps it to that shard's
	// current instant if the requested time already passed.
	cl.SetCrossShardInject(func(shard int, at simclock.Time, fn func()) bool {
		return l.multi.Handoff(shard, at, fn)
	})
	go func() {
		l.multi.Run(l.stop)
		close(l.done)
	}()
	// With one engine per shard there is no shared engine to carry the
	// periodic rebalance timer (see core.NewCluster); drive it from the
	// wall clock instead, scaled so the virtual cadence matches the
	// configured RebalanceInterval. Each pass runs under the same
	// stop-the-world barrier every whole-cluster mutation uses.
	if cl.ShardCount() > 1 {
		period := time.Duration(float64(cl.Config().RebalanceInterval) / speed)
		if period < time.Millisecond {
			period = time.Millisecond
		}
		go func() {
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-l.done:
					return
				case <-t.C:
					_ = l.Do(func() { cl.RebalanceOnce() })
				}
			}
		}()
	}
	return l
}

// liveLookahead derives the MultiDriver's bounded-skew window: the
// configured SkewBound if set, otherwise the cross-shard interaction
// floor — no shard can affect another in less than one network latency
// of virtual time — widened to cover an OS scheduling quantum at the
// configured speed so a descheduled pacer does not throttle healthy
// siblings.
func (s *System) liveLookahead(speed float64) time.Duration {
	cfg := s.cluster.Config()
	if cfg.SkewBound > 0 {
		return cfg.SkewBound
	}
	la := cfg.NetLatency
	// 2ms of wall time is a generous scheduling quantum; at speed X the
	// virtual clock covers X times that while a pacer is off-CPU.
	if quantum := time.Duration(2 * float64(time.Millisecond) * speed); quantum > la {
		la = quantum
	}
	return la
}

// Speed returns the effective virtual-vs-wall speed multiplier.
func (l *Live) Speed() float64 { return l.speed }

// WallOrigin correlates the wall clock with the virtual clock: it
// returns the wall instant at which the driver started pacing and the
// virtual instant the engines stood at then, so a virtual timestamp v
// maps to wall origin + (v-virtual)/Speed(). ok is false until the
// driver's first pacing turn (immediately after StartLive returns the
// goroutine may not have started yet). Trace exports embed this so
// flight-recorder timestamps can be aligned with external logs.
func (l *Live) WallOrigin() (wall time.Time, virtual time.Duration, ok bool) {
	if l.multi != nil {
		w, v, ok := l.multi.Origin()
		return w, v.Duration(), ok
	}
	w, v, ok := l.drv.Origin()
	return w, v.Duration(), ok
}

// System returns the system this driver paces.
func (l *Live) System() *System { return l.sys }

// MultiEngine reports whether this driver paces one engine per shard
// (Config.EnginePerShard).
func (l *Live) MultiEngine() bool { return l.multi != nil }

// Inject schedules fn onto the engine goroutine "as soon as possible"
// (at the engine's current virtual instant) and returns without waiting
// for it to run. Safe from any goroutine, including engine-side
// callbacks (an OnResult handler may Inject a follow-up submission; it
// runs on a later driver turn). It reports whether the injection was
// accepted: false means the driver has already stopped and fn will
// never run — callers owning resources tied to fn must release them on
// a false return (see serve.Server for the admission-window case).
//
// In multi-engine mode Inject lands on shard 0; use InjectOn to target
// the shard owning the state fn touches.
func (l *Live) Inject(fn func()) bool { return l.InjectOn(0, fn) }

// InjectOn schedules fn onto shard's engine goroutine at that engine's
// current virtual instant. It reports whether the injection was
// accepted (false after Stop). Without EnginePerShard every shard lives
// on the one engine and any shard index maps to it.
func (l *Live) InjectOn(shard int, fn func()) bool {
	if l.multi != nil {
		return l.multi.Inject(shard, fn)
	}
	return l.drv.Inject(fn)
}

// InjectRunOn is InjectOn in the allocation-free simclock.Runner form:
// r.Run() executes on shard's engine goroutine. With a pooled Runner
// the whole injection path is allocation-free in steady state.
func (l *Live) InjectRunOn(shard int, r simclock.Runner) bool {
	if l.multi != nil {
		return l.multi.InjectRun(shard, r)
	}
	return l.drv.InjectRun(r)
}

// InjectRunOrAbortOn is InjectOrAbortOn in Runner form: exactly one of
// r.Run() (engine-side) or ab.Abort() runs. r and ab may be the same
// pooled object.
func (l *Live) InjectRunOrAbortOn(shard int, r simclock.Runner, ab simclock.Aborter) {
	if l.multi != nil {
		l.multi.InjectRunOrAbort(shard, r, ab)
		return
	}
	l.drv.InjectRunOrAbort(r, ab)
}

// InjectOrAbortOn is InjectOn with a guaranteed-exactly-once outcome:
// either fn runs on the shard's engine goroutine, or abort runs (on the
// caller's or the driver's goroutine) because the driver stopped before
// fn could be delivered. Use it when fn owns resources — admission
// slots, response channels — that must be released even across a racing
// Stop.
func (l *Live) InjectOrAbortOn(shard int, fn, abort func()) {
	if l.multi != nil {
		l.multi.InjectOrAbort(shard, fn, abort)
		return
	}
	l.drv.InjectOrAbort(fn, abort)
}

// Every runs fn periodically, every d of virtual time, until the
// driver stops — the hook periodic policies (the closed-loop
// autoscaler) ride on. fn runs engine-side at a single virtual
// instant: injected onto the engine goroutine in single-engine mode,
// under the stop-the-world barrier in multi-engine mode (so fn may
// touch every shard's state, which is how an admission-window update
// crosses shards consistently). The cadence is paced from the wall
// clock scaled by the driver's speed — like every live injection, the
// exact virtual instants are wall-dependent; deterministic replay of
// the decisions is the journal's job, not the ticker's.
func (l *Live) Every(d time.Duration, fn func()) {
	if d <= 0 {
		return
	}
	period := time.Duration(float64(d) / l.speed)
	if period < time.Millisecond {
		period = time.Millisecond
	}
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-l.done:
				return
			case <-t.C:
				if l.multi != nil {
					_ = l.Do(fn)
				} else {
					_ = l.Inject(fn)
				}
			}
		}
	}()
}

// Do runs fn and blocks until it has completed — the synchronous
// companion to Inject, used for submissions and consistent metric
// snapshots. It returns ErrLiveStopped if the driver stopped before fn
// could run. Calling Do from inside an engine-side callback deadlocks;
// use plain function calls there (the caller is already on the engine
// goroutine).
//
// Single-engine mode runs fn on the engine goroutine. In multi-engine
// mode Do is a stop-the-world barrier: every shard's pacer parks at its
// current instant, fn runs with all engines quiescent (and may touch
// any shard's state — this is how whole-cluster mutations like
// registration and migration stay race-free), then the pacers resume.
func (l *Live) Do(fn func()) error {
	if l.multi != nil {
		if err := l.multi.Barrier(fn); err != nil {
			return ErrLiveStopped
		}
		return nil
	}
	c := doPool.Get().(*doCall)
	c.fn = fn
	if !l.drv.InjectRun(c) {
		// The driver has already stopped: fn can never run. Without this
		// check the select below still returns ErrLiveStopped (l.done is
		// closed), but only after racing the channels — and a future
		// refactor of that select could silently turn the dropped
		// injection into a hang. Fail fast at the source.
		c.fn = nil
		doPool.Put(c)
		return ErrLiveStopped
	}
	select {
	case <-c.ran:
		c.fn = nil
		doPool.Put(c)
		return nil
	case <-l.done:
		// The driver exited; the injected event may still be queued but
		// will never execute. Re-check once: fn may have run in the
		// driver's final steps (the driver goroutine finished before
		// l.done closed, so a sent token is visible here).
		select {
		case <-c.ran:
			c.fn = nil
			doPool.Put(c)
			return nil
		default:
			// The staged call was dropped without running; it may still
			// be referenced by the driver's buffers, so let the GC have
			// it rather than recycling a possibly-reachable object.
			return ErrLiveStopped
		}
	}
}

// doCall is Do's pooled rendezvous: a reusable Runner whose token
// channel replaces a per-call make(chan)+close pair. The channel has
// capacity 1 and is drained on every successful Do before the object
// returns to the pool, so a recycled doCall always starts empty.
type doCall struct {
	fn  func()
	ran chan struct{} // cap 1; Run sends exactly one token
}

func (c *doCall) Run() {
	c.fn()
	c.ran <- struct{}{}
}

var doPool = sync.Pool{New: func() any { return &doCall{ran: make(chan struct{}, 1)} }}

// Stop halts the wall-clock driver(s) and waits for the goroutines to
// exit. Pending virtual events (in-flight requests, timers) are left in
// the engines — callers that need a clean drain should stop admitting
// work and wait for in-flight completions first, which is exactly what
// serve.Server.Shutdown does. Injections staged but not yet transferred
// to an engine have their abort hooks run (see InjectOrAbortOn). Stop
// is idempotent and safe from any goroutine.
func (l *Live) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}
