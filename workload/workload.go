// Package workload is the public face of the trace-synthesis harness:
// the Microsoft-Azure-Functions-like workload of §6.5 (heavy, cold,
// bursty and periodic function classes) behind a stable import path, so
// tooling can generate traces without reaching into clockwork/internal.
package workload

import (
	"clockwork/internal/rng"
	"clockwork/internal/workload"
)

// MAFConfig parameterises trace synthesis.
type MAFConfig = workload.MAFConfig

// Trace is a synthesized multi-function invocation trace.
type Trace = workload.Trace

// FunctionTrace is one function's invocation counts per minute.
type FunctionTrace = workload.FunctionTrace

// FunctionKind classifies a synthetic serverless function workload.
type FunctionKind = workload.FunctionKind

// Function workload classes (the §6.5 mixture).
const (
	KindHeavy    = workload.KindHeavy
	KindCold     = workload.KindCold
	KindBursty   = workload.KindBursty
	KindPeriodic = workload.KindPeriodic
)

// SynthesizeMAF generates a Microsoft-Azure-Functions-like trace.
// Equal (seed, cfg) pairs give identical traces.
func SynthesizeMAF(seed uint64, cfg MAFConfig) *Trace {
	return workload.SynthesizeMAF(rng.NewSource(seed).Stream("tracegen"), cfg)
}
