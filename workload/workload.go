// Package workload is the public face of the trace-synthesis harness:
// the Microsoft-Azure-Functions-like workload of §6.5 (heavy, cold,
// bursty and periodic function classes) behind a stable import path, so
// tooling can generate traces without reaching into clockwork/internal.
package workload

import (
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/workload"
)

// MAFConfig parameterises trace synthesis.
type MAFConfig = workload.MAFConfig

// Trace is a synthesized multi-function invocation trace.
type Trace = workload.Trace

// FunctionTrace is one function's invocation counts per minute.
type FunctionTrace = workload.FunctionTrace

// FunctionKind classifies a synthetic serverless function workload.
type FunctionKind = workload.FunctionKind

// Function workload classes (the §6.5 mixture).
const (
	KindHeavy    = workload.KindHeavy
	KindCold     = workload.KindCold
	KindBursty   = workload.KindBursty
	KindPeriodic = workload.KindPeriodic
)

// SynthesizeMAF generates a Microsoft-Azure-Functions-like trace.
// Equal (seed, cfg) pairs give identical traces.
func SynthesizeMAF(seed uint64, cfg MAFConfig) *Trace {
	return workload.SynthesizeMAF(rng.NewSource(seed).Stream("tracegen"), cfg)
}

// Arrivals draws open-loop inter-arrival gaps from the same seeded
// exponential distribution the §6.3 open-loop clients use, exposed
// publicly so wall-clock load generators (cmd/clockwork-loadgen) pace
// arrivals with the paper's Poisson process. Equal (seed, rate) pairs
// give identical gap sequences. Not safe for concurrent use; give each
// generator goroutine its own Arrivals.
type Arrivals struct {
	stream *rng.Stream
	rate   float64
}

// NewPoissonArrivals returns a Poisson arrival process at ratePerSec
// requests per second. It panics on a non-positive rate, mirroring the
// internal open-loop client.
func NewPoissonArrivals(seed uint64, ratePerSec float64) *Arrivals {
	if ratePerSec <= 0 {
		panic("workload: non-positive rate")
	}
	return &Arrivals{stream: rng.NewSource(seed).Stream("arrivals"), rate: ratePerSec}
}

// Next draws the gap to the next arrival.
func (a *Arrivals) Next() time.Duration {
	return time.Duration(a.stream.Exp(1.0/a.rate) * float64(time.Second))
}

// Envelope is a time-varying rate multiplier: the instantaneous rate
// at elapsed time t is base × env(t). Envelopes shape the open-loop
// load the closed-loop autoscaler is judged against.
type Envelope = workload.Envelope

// Spike is one flash-crowd event (linear ramp up, hold, ramp down).
type Spike = workload.Spike

// Diurnal returns one sinusoidal day stretched over period, from
// trough to peak; sharpness ≥ 1 narrows the rush hour.
func Diurnal(period time.Duration, trough, peak float64, sharpness int) Envelope {
	return workload.Diurnal(period, trough, peak, sharpness)
}

// FlashCrowd returns a flat base multiplier punctuated by spikes.
func FlashCrowd(base float64, spikes ...Spike) Envelope {
	return workload.FlashCrowd(base, spikes...)
}

// ArrivalSchedule materialises the arrival instants of a
// non-homogeneous Poisson process with rate base × env(t) over
// [0, horizon) by thinning; ceiling must dominate the envelope. Equal
// (seed, parameters) pairs give identical schedules.
func ArrivalSchedule(seed uint64, base, ceiling float64, env Envelope, horizon time.Duration) []time.Duration {
	return workload.ArrivalSchedule(rng.NewSource(seed).Stream("arrivals.varying"), base, ceiling, env, horizon)
}
