module clockwork

go 1.22
