package clockwork_test

// Runnable documentation: these examples execute under `go test` with
// their output checked against the "Output:" comments, so the docs in
// README/ARCHITECTURE can never drift from the real API. Everything
// here uses ExactTiming and fixed seeds — the virtual clock makes the
// output deterministic by construction.

import (
	"errors"
	"fmt"
	"time"

	"clockwork"
)

// ExampleSystem_SubmitRequest is the canonical request round-trip:
// register a model, submit with an SLO, advance the virtual clock,
// read the typed outcome.
func ExampleSystem_SubmitRequest() {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true})
	if err != nil {
		panic(err)
	}
	sys.RegisterModel("my-resnet", "resnet50_v1b")

	h, err := sys.SubmitRequest(clockwork.Request{
		Model: "my-resnet",
		SLO:   100 * time.Millisecond,
	}, func(r clockwork.Result) {
		fmt.Printf("success=%v cold=%v batch=%d\n", r.Success, r.ColdStart, r.Batch)
	})
	if err != nil {
		panic(err)
	}
	sys.RunFor(time.Second)

	res, done := h.Outcome()
	fmt.Printf("done=%v reason=%q\n", done, res.Reason)
	// Output:
	// success=true cold=true batch=1
	// done=true reason=""
}

// ExampleNew_sharded partitions the control plane into two scheduler
// shards and shows the shard control plane: consistent ownership,
// manual migration, and per-shard accounting that always sums to the
// whole.
func ExampleNew_sharded() {
	sys, err := clockwork.New(clockwork.Config{
		Workers:       4,
		GPUsPerWorker: 1,
		Shards:        2,
		ExactTiming:   true,
	})
	if err != nil {
		panic(err)
	}
	names, _ := sys.RegisterCopies("resnet", "resnet50_v1b", 4)
	for _, n := range names {
		shard, _ := sys.ShardOf(n)
		fmt.Printf("%s -> shard %d\n", n, shard)
	}

	for round := 0; round < 4; round++ {
		for _, n := range names {
			sys.Submit(n, 100*time.Millisecond, nil)
		}
		sys.RunFor(200 * time.Millisecond)
	}

	// Move one model by hand (the periodic rebalancer does this
	// automatically when per-shard demand skews).
	if err := sys.MigrateModel("resnet#0", 0); err != nil {
		panic(err)
	}
	shard, _ := sys.ShardOf("resnet#0")
	fmt.Printf("resnet#0 migrated to shard %d (migrations=%d)\n", shard, sys.Migrations())

	var binned uint64
	for i := 0; i < sys.ShardCount(); i++ {
		st, _ := sys.ShardStats(i)
		binned += st.Requests
	}
	fmt.Printf("requests=%d binned=%d\n", sys.Summary().Requests, binned)
	// Output:
	// resnet#0 -> shard 1
	// resnet#1 -> shard 0
	// resnet#2 -> shard 1
	// resnet#3 -> shard 0
	// resnet#0 migrated to shard 0 (migrations=1)
	// requests=16 binned=16
}

// ExampleNew_shardsValidation: shard geometry is validated at
// construction — every shard needs at least one worker.
func ExampleNew_shardsValidation() {
	_, err := clockwork.New(clockwork.Config{Workers: 1, Shards: 4})
	fmt.Println(err != nil, errors.Is(err, clockwork.ErrUnknownPolicy))
	// Output: true false
}
