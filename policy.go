package clockwork

import (
	"clockwork/internal/action"
	"clockwork/internal/core"
	"clockwork/internal/simclock"
)

// VirtualTime is an instant on the simulation's virtual clock, as
// schedulers see it (Controller.Now, action windows).
type VirtualTime = simclock.Time

// MaxVirtualTime is the far-future instant (an unbounded action window).
const MaxVirtualTime = simclock.MaxTime

// Policy names a serving policy in the registry.
type Policy string

// Built-in policies: the paper's system, its LOAD-selection ablation,
// and the two baselines of §6.1. The baselines self-register from their
// package; use Policies for the live list.
const (
	PolicyClockwork Policy = "clockwork"
	PolicyClipper   Policy = "clipper"
	PolicyINFaaS    Policy = "infaas"
)

// Scheduler is the decision-making brain plugged into the controller
// (§5.3): the controller owns networking, state mirroring, timeouts and
// response plumbing; the scheduler decides what runs where and when.
// Custom schedulers implement this interface and register with
// RegisterPolicy; see Controller for the surface they program against.
type Scheduler = core.Scheduler

// Controller is the central controller a Scheduler programs against:
// model/GPU state mirrors, latency estimates, and the SendInfer /
// SendLoad / SendUnload action emitters.
type Controller = core.Controller

// ControllerRequest is a request as the controller (and a Scheduler)
// sees it — distinct from the client-side Request submission struct.
type ControllerRequest = core.Request

// ActionResult is a worker's report on one completed or rejected action.
type ActionResult = action.Result

// GPUMirror is the controller's model of one worker GPU.
type GPUMirror = core.GPUMirror

// ModelInfo is the controller-side registry entry for one model.
type ModelInfo = core.ModelInfo

// PolicySpec describes a pluggable serving policy: a scheduler factory
// plus the cluster-level switches the policy requires.
type PolicySpec struct {
	// New returns a fresh Scheduler per system; it must not share
	// mutable state between instances.
	New func() Scheduler
	// DisableAdmissionControl turns off cancel-in-advance (baselines
	// treat the SLO as a soft goal and execute late requests).
	DisableAdmissionControl bool
	// BestEffortWorkers runs workers in the baseline thread-pool mode:
	// concurrent EXECs with the Fig 2b latency variability.
	BestEffortWorkers bool
	// Description is a one-line summary for listings.
	Description string
}

// RegisterPolicy adds a named policy so New(Config{Policy: name}) can
// resolve it. Names must be unique (ErrDuplicatePolicy otherwise);
// built-in policies and the baselines register themselves the same way.
func RegisterPolicy(name Policy, spec PolicySpec) error {
	return core.RegisterPolicy(string(name), core.PolicySpec{
		New:                     spec.New,
		DisableAdmissionControl: spec.DisableAdmissionControl,
		WorkerBestEffort:        spec.BestEffortWorkers,
		Description:             spec.Description,
	})
}

// ErrDuplicatePolicy: RegisterPolicy was called twice for one name.
var ErrDuplicatePolicy = core.ErrDuplicatePolicy

// Policies returns the registered policy names, sorted.
func Policies() []Policy {
	names := core.Policies()
	out := make([]Policy, len(names))
	for i, n := range names {
		out[i] = Policy(n)
	}
	return out
}

// PolicyDescription returns the registered one-line description.
func PolicyDescription(name Policy) (string, bool) {
	spec, ok := core.LookupPolicy(string(name))
	return spec.Description, ok
}
